// Package alloc implements the allocation step of the two-step scheduling
// algorithms the paper builds on and compares against (Section II-B):
//
//   - CPA    — Critical Path and Area-based allocation (Rădulescu & van
//     Gemund, ICPP 2001), the common ancestor of the family.
//   - HCPA   — Heterogeneous CPA (N'Takpé & Suter, ICPADS 2006): CPA run on a
//     virtual reference cluster; degenerates to CPA on one homogeneous
//     cluster (DESIGN.md item 4.5).
//   - MCPA   — Modified CPA (Bansal, Kumar & Singh, ParCo 2006): CPA with the
//     per-precedence-level allocation bound that preserves task parallelism.
//   - MCPA2  — a variant in the spirit of Hunold (CCGrid 2010) that lets
//     critical tasks reclaim processors from non-critical tasks of the same
//     level once the level budget is exhausted.
//   - DeltaCP — the paper's own seeding heuristic (Section III-B): share all
//     processors among the Δ-critical tasks of each precedence level.
//   - OneEach / Random — trivial allocators used as EA seeds and baselines.
//
// Allocators only produce allocation vectors; mapping them onto processors is
// package listsched's job.
package alloc

import (
	"fmt"
	"math"
	"math/rand"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/schedule"
)

// Allocator computes a processor allocation for a PTG whose execution times
// are given by a model table (which also fixes the processor count).
type Allocator interface {
	// Name identifies the allocator in reports ("cpa", "mcpa", ...).
	Name() string
	// Allocate returns one processor count per task, each in [1, tab.Procs()].
	Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error)
}

// OneEach allocates a single processor to every task — the starting point of
// the CPA family and a pure task-parallel baseline.
type OneEach struct{}

// Name implements Allocator.
func (OneEach) Name() string { return "one" }

// Allocate implements Allocator.
func (OneEach) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	return schedule.Ones(g.NumTasks()), nil
}

// Random allocates every task a uniform random processor count in
// [1, tab.Procs()], reproducibly from Seed. It provides the random starting
// individuals of the EA population.
type Random struct {
	// Seed makes the allocation reproducible.
	Seed int64
}

// Name implements Allocator.
func (Random) Name() string { return "random" }

// Allocate implements Allocator.
func (r Random) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	a := make(schedule.Allocation, g.NumTasks())
	for i := range a {
		a[i] = 1 + rng.Intn(tab.Procs())
	}
	return a, nil
}

// cpaCore runs the CPA allocation loop. growable reports whether a task's
// allocation may be incremented given the current allocation state; it is the
// hook through which MCPA adds its level bound. onGrow is called after each
// increment so bound bookkeeping can be updated.
//
// The loop follows Rădulescu & van Gemund: starting from one processor per
// task, while the critical-path length T_CP exceeds the average area
// T_A = (1/P)·Σ s(v)·T(v, s(v)), grow the allocation of the critical-path
// task whose increment most reduces its average area T(v,s)/s. A task is only
// grown when that reduction is strictly positive — under non-monotonic models
// (Model 2) this makes the procedure stall early with small allocations,
// exactly the behaviour the paper reports in Section V-B.
func cpaCore(g *dag.Graph, tab *model.Table, growable func(v dag.TaskID, s schedule.Allocation) bool, onGrow func(v dag.TaskID)) schedule.Allocation {
	procs := tab.Procs()
	s := schedule.Ones(g.NumTasks())
	cost := listsched.Cost(tab, s)

	// area = Σ s(v)·T(v, s(v)) is maintained incrementally.
	area := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		area += tab.Time(dag.TaskID(i), 1)
	}

	// Bottom levels and the critical path are recomputed every iteration, so
	// both reuse one buffer across the whole loop (the dominant allocation
	// cost of seeding otherwise).
	var bl []float64
	path := make([]dag.TaskID, 0, g.NumTasks())
	sources := g.Sources()

	// Each increment changes one allocation, so at most V·(P-1) iterations.
	for iter := 0; iter < g.NumTasks()*procs; iter++ {
		bl = g.BottomLevelsInto(cost, bl)
		tcp := 0.0
		for _, b := range bl {
			if b > tcp {
				tcp = b
			}
		}
		ta := area / float64(procs)
		if tcp <= ta {
			break
		}
		// Walk the critical path from the highest-bottom-level source,
		// breaking ties toward the smaller task ID exactly like
		// dag.CriticalPath.
		path = path[:0]
		cur := dag.TaskID(-1)
		for _, src := range sources {
			if cur == -1 || bl[src] > bl[cur] {
				cur = src
			}
		}
		for cur != -1 {
			path = append(path, cur)
			next := dag.TaskID(-1)
			for _, s := range g.Successors(cur) {
				if next == -1 || bl[s] > bl[next] {
					next = s
				}
			}
			cur = next
		}
		best := dag.TaskID(-1)
		bestGain := 0.0
		for _, v := range path {
			sv := s[v]
			if sv >= procs || (growable != nil && !growable(v, s)) {
				continue
			}
			gain := tab.Time(v, sv)/float64(sv) - tab.Time(v, sv+1)/float64(sv+1)
			if gain > bestGain {
				bestGain = gain
				best = v
			}
		}
		if best == -1 {
			break // no critical-path task can beneficially grow
		}
		area -= float64(s[best]) * tab.Time(best, s[best])
		s[best]++
		area += float64(s[best]) * tab.Time(best, s[best])
		if onGrow != nil {
			onGrow(best)
		}
	}
	return s
}

// CPA is the Critical Path and Area-based allocator of Rădulescu & van
// Gemund. Its allocation procedure has complexity O(V(V+E)P) (Section III-E).
type CPA struct{}

// Name implements Allocator.
func (CPA) Name() string { return "cpa" }

// Allocate implements Allocator.
func (CPA) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	return cpaCore(g, tab, nil, nil), nil
}

// HCPA is the allocation procedure of Heterogeneous CPA (N'Takpé & Suter).
// HCPA computes allocations on a virtual reference cluster and translates
// them to each real cluster proportionally to processor speed. On a single
// homogeneous cluster with the reference speed equal to the cluster speed the
// translation is the identity and HCPA's allocation equals CPA's — which is
// how the paper uses it.
type HCPA struct {
	// ReferenceSpeedGFlops is the speed of the virtual reference cluster's
	// processors. Zero means "use the target cluster's speed" (identity
	// translation, the paper's homogeneous setting).
	ReferenceSpeedGFlops float64
	// ClusterSpeedGFlops is the speed of the target cluster's processors,
	// used for the translation. Zero means equal to the reference speed.
	ClusterSpeedGFlops float64
}

// Name implements Allocator.
func (HCPA) Name() string { return "hcpa" }

// Allocate implements Allocator.
func (h HCPA) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	s := cpaCore(g, tab, nil, nil)
	ref, target := h.ReferenceSpeedGFlops, h.ClusterSpeedGFlops
	//schedlint:allow floateq -- exact identity short-circuit on two configured speeds, not on computed values: translation is the identity iff they are bit-equal
	if ref <= 0 || target <= 0 || ref == target {
		return s, nil
	}
	// Translate reference allocations to the target cluster: a task that got
	// s_ref processors of speed ref needs ceil(s_ref·ref/target) processors
	// of speed target to retain (at least) the same aggregate speed.
	procs := tab.Procs()
	for i := range s {
		s[i] = int(math.Ceil(float64(s[i]) * ref / target))
		if s[i] < 1 {
			s[i] = 1
		}
		if s[i] > procs {
			s[i] = procs
		}
	}
	return s, nil
}

// MCPA is the Modified CPA allocator of Bansal, Kumar & Singh: identical to
// CPA except that a task may only grow while the summed allocation of its
// precedence level stays within P, which preserves the task parallelism of
// regular (layered) PTGs — the reason MCPA is hard to beat on FFT, Strassen,
// and layered graphs (Section V-A).
type MCPA struct{}

// Name implements Allocator.
func (MCPA) Name() string { return "mcpa" }

// Allocate implements Allocator.
func (MCPA) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	level, byLevel := g.PrecedenceLevels()
	procs := tab.Procs()
	levelSum := make([]int, len(byLevel))
	for l, tasks := range byLevel {
		levelSum[l] = len(tasks) // every task starts with 1 processor
	}
	growable := func(v dag.TaskID, s schedule.Allocation) bool {
		return levelSum[level[v]] < procs
	}
	onGrow := func(v dag.TaskID) { levelSum[level[v]]++ }
	return cpaCore(g, tab, growable, onGrow), nil
}

// MCPA2 extends MCPA in the spirit of Hunold (CCGrid 2010): when a critical
// task's precedence level has exhausted its processor budget, MCPA2 reclaims
// one processor from the least-critical task of the same level that holds
// more than one (instead of refusing to grow, as MCPA does). Levels whose
// width exceeds P behave exactly like MCPA.
type MCPA2 struct{}

// Name implements Allocator.
func (MCPA2) Name() string { return "mcpa2" }

// Allocate implements Allocator.
func (MCPA2) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	level, byLevel := g.PrecedenceLevels()
	procs := tab.Procs()
	levelSum := make([]int, len(byLevel))
	for l, tasks := range byLevel {
		levelSum[l] = len(tasks)
	}
	var alloc schedule.Allocation // captured for the reclaim step
	growable := func(v dag.TaskID, s schedule.Allocation) bool {
		alloc = s
		if levelSum[level[v]] < procs {
			return true
		}
		// The level is full: growing v is allowed only if some other task of
		// the level can donate a processor.
		return donor(g, tab, s, byLevel[level[v]], v) != -1
	}
	onGrow := func(v dag.TaskID) {
		if levelSum[level[v]] < procs {
			levelSum[level[v]]++
			return
		}
		d := donor(g, tab, alloc, byLevel[level[v]], v)
		if d != -1 {
			alloc[d]-- // levelSum unchanged: one in, one out
		} else {
			levelSum[level[v]]++ // defensive; growable should have prevented this
		}
	}
	return cpaCore(g, tab, growable, onGrow), nil
}

// donor picks the task in tasks (excluding grown) with the smallest bottom
// level among those holding more than one processor, or -1. Bottom levels are
// approximated by the tasks' current execution times plus successors, which
// cpaCore recomputes each iteration anyway; using the cheaper current
// execution time T(v, s(v)) as the criticality proxy keeps this O(width).
func donor(g *dag.Graph, tab *model.Table, s schedule.Allocation, tasks []dag.TaskID, grown dag.TaskID) dag.TaskID {
	best := dag.TaskID(-1)
	bestTime := 0.0
	for _, u := range tasks {
		if u == grown || s[u] <= 1 {
			continue
		}
		t := tab.Time(u, s[u])
		if best == -1 || t < bestTime {
			best = u
			bestTime = t
		}
	}
	return best
}

// DeltaCP is the paper's heuristic for creating an additional starting
// individual (Section III-B): compute bottom levels assuming one processor
// per task, then, per precedence level, share all P processors equally among
// the Δ-critical tasks of that level (those whose bottom level is at least
// Delta times the level's maximum); non-critical tasks get one processor.
type DeltaCP struct {
	// Delta in [0,1] is the minimum relative criticality; the paper uses 0.9
	// ("tasks whose criticality is only 10% smaller than the maximum value
	// are also considered critical").
	Delta float64
}

// Name implements Allocator.
func (DeltaCP) Name() string { return "delta-cp" }

// Allocate implements Allocator.
func (d DeltaCP) Allocate(g *dag.Graph, tab *model.Table) (schedule.Allocation, error) {
	if err := checkInputs(g, tab); err != nil {
		return nil, err
	}
	if d.Delta < 0 || d.Delta > 1 {
		return nil, fmt.Errorf("alloc: delta %g outside [0,1]", d.Delta)
	}
	procs := tab.Procs()
	ones := schedule.Ones(g.NumTasks())
	bl := g.BottomLevels(listsched.Cost(tab, ones))
	_, byLevel := g.PrecedenceLevels()

	s := schedule.Ones(g.NumTasks())
	for _, tasks := range byLevel {
		maxBL := 0.0
		for _, v := range tasks {
			if bl[v] > maxBL {
				maxBL = bl[v]
			}
		}
		var critical []dag.TaskID
		for _, v := range tasks {
			if bl[v] >= d.Delta*maxBL {
				critical = append(critical, v)
			}
		}
		if len(critical) == 0 {
			continue // unreachable: the max task is always critical
		}
		share := procs / len(critical)
		if share < 1 {
			share = 1
		}
		for _, v := range critical {
			s[v] = share
		}
	}
	return s, nil
}

func checkInputs(g *dag.Graph, tab *model.Table) error {
	if tab.NumTasks() != g.NumTasks() {
		return fmt.Errorf("alloc: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	if g.NumTasks() == 0 {
		return fmt.Errorf("alloc: empty graph")
	}
	return nil
}
