// Package norandglobal forbids the process-global math/rand state.
//
// Every stochastic choice in this repository — DAG generation, EA mutation,
// random seeding of the initial population — must flow through an injected
// *rand.Rand built from an explicit seed, because equal seeds must give
// bit-identical runs (DESIGN.md §9). Package-level math/rand functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...) consult a shared, racy,
// auto-seeded source, and math/rand/v2's package-level functions are seeded
// from runtime entropy with no way to pin them at all. Seeding an injected
// source from the wall clock (rand.NewSource(time.Now().UnixNano())) is the
// same bug with extra steps, so it is rejected too.
package norandglobal

import (
	"go/ast"
	"go/types"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "norandglobal",
	Doc:  "norandglobal: forbid global math/rand state; randomness must flow through an injected *rand.Rand",
	Run:  run,
}

// constructors are the only package-level math/rand functions that do not
// touch the global source: they build the injected generators the repo
// standardizes on.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an injected generator (e.g. (*rand.Rand).Intn) — the sanctioned form
			}
			switch {
			case !constructors[fn.Name()]:
				pass.Reportf(call.Pos(),
					"call to global %s.%s: pass an injected *rand.Rand built from an explicit seed instead", pkgBase(pkg), fn.Name())
			case fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8":
				if wallClockSeeded(pass, call) {
					pass.Reportf(call.Pos(),
						"%s.%s seeded from the wall clock: seeds must be explicit so equal seeds give equal runs", pkgBase(pkg), fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// wallClockSeeded reports whether any argument subtree reads the wall clock
// (time.Now and derivatives like time.Now().UnixNano()).
func wallClockSeeded(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if ok && pass.IsPkgFunc(inner, "time", "Now") {
				found = true
			}
			return !found
		})
	}
	return found
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
