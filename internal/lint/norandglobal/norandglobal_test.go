package norandglobal_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/norandglobal"
)

func TestNoRandGlobal(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), norandglobal.Analyzer, "a")
}
