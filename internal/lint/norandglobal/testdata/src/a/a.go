// Fixture for the norandglobal analyzer.
package a

import (
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Int()                     // want `call to global rand.Int`
	_ = rand.Intn(10)                  // want `call to global rand.Intn`
	_ = rand.Float64()                 // want `call to global rand.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `call to global rand.Shuffle`
	rand.Seed(42)                      // want `call to global rand.Seed`
	_ = rand.Perm(4)                   // want `call to global rand.Perm`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// injected is the sanctioned pattern: explicit seed, methods on the instance.
func injected(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 0 {
		return rng.NormFloat64()
	}
	return rng.Float64()
}

func passedThrough(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}
