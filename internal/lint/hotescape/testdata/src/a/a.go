// Fixture for the hotescape analyzer. The harness compiles this file with
// `go build -gcflags=-m` and feeds the compiler's verdicts to the analyzer,
// so every want below rides on a deterministic escape-analysis outcome:
// returning a pointer to a local always escapes, storing a local's address in
// a global always moves it, and //go:noinline always defeats the inliner.
package a

type point struct{ x, y float64 }

var sinkInt *int

// hotEsc returns a pointer to a fresh composite literal: a per-call heap
// allocation the compiler reports at the literal.
//
//schedlint:hotpath
func hotEsc(x float64) *point {
	return &point{x: x} // want `escapes to heap`
}

// hotMove leaks a local's address into a global: moved to heap.
//
//schedlint:hotpath
func hotMove(n int) {
	x := n // want `moved to heap`
	sinkInt = &x
}

// heavy is pinned non-inlinable, standing in for a callee past the inliner's
// cost threshold.
//
//go:noinline
func heavy(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

func small(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

// hotCalls: small inlines (fine), heavy does not (one over-budget miss).
//
//schedlint:hotpath
func hotCalls(xs []float64) float64 {
	return small(xs) + heavy(xs) // want `1 same-package call\(s\) not inlined \(budget 0\): heavy`
}

// grow is the sanctioned arena helper (set hotescape.grow-helpers grow): its
// amortized allocation is exempt whether or not the inliner folds it into the
// caller, and the call itself is exempt from the inline budget.
func grow(xs []float64, n int) []float64 {
	if cap(xs) < n {
		xs = make([]float64, n)
	}
	return xs[:n]
}

//schedlint:hotpath
func hotGrow(buf []float64, n int) []float64 {
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// hotClean allocates nothing and calls nothing: the shape every hotpath
// function should have.
//
//schedlint:hotpath
func hotClean(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

// coldEsc is unmarked: the same escape passes.
func coldEsc() *point {
	return &point{x: 1}
}
