// Fixture for hotescape //schedlint:allow handling (filtered mode): a
// sanctioned cold-path escape carries a reasoned directive, a naked one
// reports.
package allow

type item struct{ v int }

//schedlint:hotpath
func hotAllowed(v int) *item {
	//schedlint:allow hotescape -- fixture: once-per-shape setup allocation
	return &item{v: v}
}

//schedlint:hotpath
func hotNaked(v int) *item {
	return &item{v: v} // want `escapes to heap`
}
