// Package hotescape checks `//schedlint:hotpath` functions against the gc
// compiler's own escape-analysis and inlining verdicts.
//
// hotalloc (PR 2) flags the syntactic constructs that allocate — fmt calls,
// interface boxing, capturing closures, capacity-less appends — but the
// compiler is the ground truth: escape analysis decides what actually reaches
// the heap, and it sees through patterns no syntactic rule can (a value
// escaping via a leaked parameter, a make the caller's inliner fails to
// stack-allocate). This analyzer consumes the `go build -gcflags=-m`
// diagnostics the driver collects (package gcdiag) and reports, for every
// hotpath function:
//
//   - any "escapes to heap" / "moved to heap" verdict inside the function
//     body — each one is a per-call heap allocation on the paper's fitness
//     path;
//   - same-package static callees the compiler failed to inline, beyond a
//     configured budget — a non-inlined callee hides its allocations from
//     the caller's escape analysis and adds call overhead on the hot loop.
//
// Two escape hatches keep the signal clean. Escape diagnostics attributed to
// a call of a sanctioned grow helper (conf: `set hotescape.grow-helpers
// grow,growScratch,...`) are skipped: amortized arena doubling allocates by
// design, on the cold first-growth path only. And any remaining cold-path
// escape (error capture, once-per-shape setup) carries an inline
// `//schedlint:allow hotescape -- <reason>` like every other analyzer.
//
// The inline budget exempts callees that are themselves hotpath-marked (they
// are checked in their own right) and everything outside the package
// (stdlib and cross-package calls are API boundaries, not hidden cost).
package hotescape

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"emts/internal/lint/analysis"
	"emts/internal/lint/hotmark"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name:         "hotescape",
	Doc:          "hotescape: fail //schedlint:hotpath functions with compiler-verified heap escapes or over-budget non-inlined callees",
	Run:          run,
	NeedsGCDiags: true,
}

const (
	// inlinePrefix introduces the compiler's inlining verdicts.
	inlinePrefix = "inlining call to "
	// Default inline budget: every same-package non-hotpath callee must
	// inline. Raise per-repo with `set hotescape.inline-budget N`.
	defaultBudget = 0
)

func run(pass *analysis.Pass) (interface{}, error) {
	if len(pass.GCDiags) == 0 {
		return nil, nil // driver supplied no compiler facts (test variant)
	}
	budget := defaultBudget
	if v := pass.Setting("hotescape.inline-budget", ""); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			budget = n
		}
	}
	helpers := make(map[string]bool)
	for _, h := range strings.Split(pass.Setting("hotescape.grow-helpers", ""), ",") {
		if h = strings.TrimSpace(h); h != "" {
			helpers[h] = true
		}
	}

	// Index diagnostics by file for span lookups, and pre-split the inline
	// verdicts: an escape attributed to the same position as `inlining call
	// to <helper>` came from the helper's inlined body.
	byFile := make(map[string][]analysis.GCDiag)
	inlined := make(map[posKey][]string) // position -> inlined callee names
	for _, d := range pass.GCDiags {
		byFile[d.File] = append(byFile[d.File], d)
		if name, ok := strings.CutPrefix(d.Message, inlinePrefix); ok {
			k := posKey{d.File, d.Line, d.Col}
			inlined[k] = append(inlined[k], name)
		}
	}

	hot := hotpathFuncs(pass)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		diags := byFile[tf.Name()]
		for _, fn := range hotmark.Funcs(f) {
			checkEscapes(pass, fn, tf, diags, inlined, helpers)
			checkInlining(pass, fn, tf, diags, hot, helpers, budget)
		}
	}
	return nil, nil
}

type posKey struct {
	file      string
	line, col int
}

// checkEscapes reports every compiler escape verdict inside the function's
// line span, except those attributed to a sanctioned grow helper's inlined
// body.
func checkEscapes(pass *analysis.Pass, fn *ast.FuncDecl, tf *token.File, diags []analysis.GCDiag, inlined map[posKey][]string, helpers map[string]bool) {
	lo := tf.Line(fn.Body.Pos())
	hi := tf.Line(fn.Body.End())
	for _, d := range diags {
		if d.Line < lo || d.Line > hi || !isEscape(d.Message) {
			continue
		}
		if fromGrowHelper(inlined[posKey{d.File, d.Line, d.Col}], helpers) {
			continue
		}
		pos := pass.PosFor(d.File, d.Line, d.Col)
		if pos == token.NoPos {
			pos = fn.Pos()
		}
		pass.Reportf(pos, "hot path %s: compiler reports %q; heap allocation on the fitness path", fn.Name.Name, d.Message)
	}
}

// isEscape matches the allocation verdicts. "does not escape" and "leaking
// param" lines are informational, not allocations in this function.
func isEscape(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

// fromGrowHelper reports whether one of the callees inlined at this position
// is a sanctioned grow helper (generic helpers report as `grow[go.shape.X]`).
func fromGrowHelper(names []string, helpers map[string]bool) bool {
	for _, n := range names {
		base := n
		if i := strings.IndexByte(base, '['); i >= 0 {
			base = base[:i]
		}
		if i := strings.LastIndexByte(base, '.'); i >= 0 {
			base = base[i+1:]
		}
		base = strings.TrimSuffix(base, ")") // defensive: (*T).m never ends here, but be safe
		if helpers[base] {
			return true
		}
	}
	return false
}

// checkInlining counts same-package static callees the compiler did not
// inline and reports the function once when the count exceeds the budget.
func checkInlining(pass *analysis.Pass, fn *ast.FuncDecl, tf *token.File, diags []analysis.GCDiag, hot, helpers map[string]bool, budget int) {
	// Inline verdicts within the function, by line: a call at line L is
	// inlined iff some `inlining call to <name>` diag sits on line L naming
	// the callee.
	inlinedAt := make(map[int][]string)
	lo := tf.Line(fn.Body.Pos())
	hi := tf.Line(fn.Body.End())
	for _, d := range diags {
		if d.Line < lo || d.Line > hi {
			continue
		}
		if name, ok := strings.CutPrefix(d.Message, inlinePrefix); ok {
			inlinedAt[d.Line] = append(inlinedAt[d.Line], name)
		}
	}

	type miss struct {
		pos  token.Pos
		name string
	}
	var misses []miss
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies are not this function's hot loop
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeFunc(call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg() != pass.Pkg {
			return true // dynamic, builtin, or cross-package: out of scope
		}
		if hot[callee.Name()] || helpers[callee.Name()] {
			return true // hotpath callees are verified independently;
			// grow helpers allocate by design on the cold growth path
		}
		line := tf.Line(call.Pos())
		if calleeInlined(inlinedAt[line], callee.Name()) {
			return true
		}
		misses = append(misses, miss{call.Pos(), callee.Name()})
		return true
	})
	if len(misses) <= budget {
		return
	}
	names := make([]string, 0, len(misses))
	for _, m := range misses {
		names = append(names, m.name)
	}
	sort.Strings(names)
	pass.Reportf(misses[0].pos,
		"hot path %s: %d same-package call(s) not inlined (budget %d): %s; mark the callee //schedlint:hotpath, shrink it below the inliner's cost threshold, or raise hotescape.inline-budget",
		fn.Name.Name, len(misses), budget, strings.Join(names, ", "))
}

// calleeInlined reports whether an inline verdict on the call's line names
// the callee. Verdict spellings: `F`, `F[go.shape.int]`, `(*T).m`, `T.m`.
func calleeInlined(verdicts []string, name string) bool {
	for _, v := range verdicts {
		if i := strings.IndexByte(v, '['); i >= 0 {
			v = v[:i]
		}
		if v == name || strings.HasSuffix(v, "."+name) || strings.HasSuffix(v, ")."+name) {
			return true
		}
	}
	return false
}

// hotpathFuncs collects the names of every hotpath-marked function in the
// package, across all its files, for the inline-budget exemption.
func hotpathFuncs(pass *analysis.Pass) map[string]bool {
	hot := make(map[string]bool)
	for _, f := range pass.Files {
		for _, fn := range hotmark.Funcs(f) {
			hot[fn.Name.Name] = true
		}
	}
	return hot
}
