package hotescape_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/hotescape"
)

func TestHotEscape(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), hotescape.Analyzer,
		analysistest.Options{Settings: map[string]string{"hotescape.grow-helpers": "grow"}}, "a")
}

func TestHotEscapeAllowDirectives(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), hotescape.Analyzer,
		analysistest.Options{Filtered: true}, "allow")
}
