package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []string // absolute paths, same order as Syntax
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") with the go command, parses the
// matched packages from source, and type-checks them against the compiler
// export data of their dependencies. It works fully offline: `go list -export`
// materializes export data for every dependency — including the standard
// library — in the local build cache, and the gc importer reads it from there.
//
// This replaces golang.org/x/tools/go/packages, which is unavailable in this
// repository's dependency-free build (see DESIGN.md §9).
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportDataImporter returns a types.Importer that resolves import paths to
// compiler export-data files via resolve. Unresolvable paths fail the
// type-check with a descriptive error.
func ExportDataImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, pkg.Syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// CheckFiles type-checks an explicit file list as one package (used by the
// vet -vettool mode, where cmd/go supplies the file list and export data
// locations, and by analysistest for fixtures).
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	return checkFiles(fset, imp, importPath, dir, goFiles)
}
