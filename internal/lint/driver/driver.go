// Package driver loads packages and applies schedlint analyzers to them,
// filtering the raw diagnostics through the repo allowlist and the inline
// `//schedlint:allow` directives.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"emts/internal/lint/analysis"
	"emts/internal/lint/config"
)

// Finding is one post-filter diagnostic.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. cfg may be nil (no file-level allowlist).
// Malformed inline directives are reported as findings of the pseudo-analyzer
// "schedlint" so a typo cannot silently suppress nothing.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, cfg *config.Config) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := make(map[string]*config.Suppressions, len(pkg.Files))
		for i, f := range pkg.Syntax {
			s := config.CollectSuppressions(pkg.Fset, f)
			sup[pkg.Files[i]] = s
			for _, pos := range s.Malformed() {
				findings = append(findings, Finding{
					Analyzer: "schedlint",
					Position: pkg.Fset.Position(pos),
					Message:  "malformed //schedlint:allow directive: want `//schedlint:allow <analyzer>[,...] -- <reason>`",
				})
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if cfg.Allows(a.Name, pos.Filename) {
					return
				}
				if sup[pos.Filename].Allows(a.Name, pos.Line) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
