// Package driver loads packages and applies schedlint analyzers to them,
// filtering the raw diagnostics through the repo allowlist and the inline
// `//schedlint:allow` directives.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"emts/internal/lint/analysis"
	"emts/internal/lint/config"
	"emts/internal/lint/gcdiag"
)

// Finding is one post-filter diagnostic.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. cfg may be nil (no file-level allowlist).
// known is the full set of analyzer names inline directives may legally
// reference (nil means: exactly the analyzers being run); a directive naming
// anything else is reported — a typo would otherwise suppress nothing,
// silently. Malformed inline directives are likewise reported as findings of
// the pseudo-analyzer "schedlint".
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, cfg *config.Config, known []string) ([]Finding, error) {
	if known == nil {
		for _, a := range analyzers {
			known = append(known, a.Name)
		}
	}
	knownSet := make(map[string]bool, len(known)+1)
	knownSet["schedlint"] = true // the driver's own pseudo-analyzer
	for _, n := range known {
		knownSet[n] = true
	}
	needGC := false
	for _, a := range analyzers {
		if a.NeedsGCDiags {
			needGC = true
		}
	}

	var findings []Finding
	for _, pkg := range pkgs {
		sup := make(map[string]*config.Suppressions, len(pkg.Files))
		for i, f := range pkg.Syntax {
			s := config.CollectSuppressions(pkg.Fset, f)
			sup[pkg.Files[i]] = s
			for _, pos := range s.Malformed() {
				findings = append(findings, Finding{
					Analyzer: "schedlint",
					Position: pkg.Fset.Position(pos),
					Message:  "malformed //schedlint:allow directive: want `//schedlint:allow <analyzer>[,...] -- <reason>`",
				})
			}
			for _, d := range s.Directives() {
				for _, n := range d.Names {
					if !knownSet[n] {
						findings = append(findings, Finding{
							Analyzer: "schedlint",
							Position: pkg.Fset.Position(d.Pos),
							Message:  fmt.Sprintf("//schedlint:allow names unknown analyzer %q (known: %s)", n, strings.Join(known, ", ")),
						})
					}
				}
			}
		}
		var diags []analysis.GCDiag
		if needGC && pkg.Dir != "" && !hasTestFiles(pkg) {
			var err error
			diags, err = gcdiag.ForPackage(pkg.Dir, pkg.Types != nil && pkg.Types.Name() == "main")
			if err != nil {
				return nil, fmt.Errorf("compiler diagnostics for %s: %v", pkg.ImportPath, err)
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Dir:       pkg.Dir,
			}
			if cfg != nil {
				pass.Settings = cfg.Settings
			}
			if a.NeedsGCDiags {
				if diags == nil {
					continue // test variant or unknown dir: no compiler facts
				}
				pass.GCDiags = diags
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if cfg.Allows(a.Name, pos.Filename) {
					return
				}
				if sup[pos.Filename].Allows(a.Name, pos.Line) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// hasTestFiles reports whether the package includes _test.go sources — the
// vet protocol hands schedlint test variants, which cannot be rebuilt
// standalone for compiler diagnostics (and carry no hotpath annotations).
func hasTestFiles(pkg *Package) bool {
	for _, f := range pkg.Files {
		if strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}
