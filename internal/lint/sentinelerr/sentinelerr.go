// Package sentinelerr enforces the sentinel-error discipline on hot paths.
//
// The admission pipeline distinguishes rejection causes by error identity:
// listsched.ErrRejected is the umbrella sentinel and ErrRejectedPrefilter is
// a package-level `fmt.Errorf("%w ...")` wrap of it, so callers split the
// two with errors.Is while the fast path stays allocation-free — both values
// are constructed once, at package init. That contract breaks quietly if a
// hot function ever constructs an error per call (fmt.Errorf allocates and
// yields a fresh identity every time) or compares errors by message text
// (which ignores wrapping entirely). In `//schedlint:hotpath` functions this
// analyzer therefore flags:
//
//   - fmt.Errorf / errors.New / errors.Join calls — per-call construction;
//     predeclare the sentinel (or the %w wrap) at package level instead;
//   - comparing err.Error() text with == or != — identity by message
//     defeats errors.Is and the %w chain;
//   - == / != between two error values when neither side is nil or a
//     package-level sentinel — comparing two transient errors is identity
//     roulette; compare against a sentinel, or use errors.Is for wraps.
//
// Cold error paths inside a hot function that genuinely need formatting
// carry `//schedlint:allow sentinelerr -- <reason>`, same as every analyzer.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"

	"emts/internal/lint/analysis"
	"emts/internal/lint/hotmark"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinelerr: hot paths must use predeclared error sentinels, compared by identity or errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, fn := range hotmark.Funcs(f) {
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // closures are not the hot loop
		case *ast.CallExpr:
			if ctor := errorCtor(pass, e); ctor != "" {
				pass.Reportf(e.Pos(),
					"hot path %s: %s constructs an error per call; predeclare a package-level sentinel and return it", name, ctor)
			}
		case *ast.BinaryExpr:
			checkCompare(pass, e, name)
		}
		return true
	})
}

// errorCtor returns the printable name of a per-call error constructor, or "".
func errorCtor(pass *analysis.Pass, call *ast.CallExpr) string {
	for _, c := range [...]struct{ pkg, fn string }{
		{"fmt", "Errorf"},
		{"errors", "New"},
		{"errors", "Join"},
	} {
		if pass.IsPkgFunc(call, c.pkg, c.fn) {
			return c.pkg + "." + c.fn
		}
	}
	return ""
}

func checkCompare(pass *analysis.Pass, e *ast.BinaryExpr, name string) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	// err.Error() == "..." — message-text identity.
	if isErrorTextCall(pass, e.X) || isErrorTextCall(pass, e.Y) {
		pass.Reportf(e.Pos(),
			"hot path %s: comparing err.Error() text; compare sentinels with == or errors.Is instead", name)
		return
	}
	// error == error where neither side is nil or a package-level sentinel.
	if !isErrorExpr(pass, e.X) || !isErrorExpr(pass, e.Y) {
		return
	}
	if isNil(pass, e.X) || isNil(pass, e.Y) {
		return
	}
	if isSentinel(pass, e.X) || isSentinel(pass, e.Y) {
		return
	}
	pass.Reportf(e.Pos(),
		"hot path %s: comparing two non-sentinel errors; compare against a package-level sentinel (or errors.Is for wrapped ones)", name)
}

// isErrorTextCall matches a call of the error interface's Error method.
func isErrorTextCall(pass *analysis.Pass, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(pass.TypeOf(sel.X))
}

func isErrorExpr(pass *analysis.Pass, x ast.Expr) bool {
	return isErrorType(pass.TypeOf(x))
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}

func isNil(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(x)]
	return ok && tv.IsNil()
}

// isSentinel reports whether the expression names a package-level error
// variable — the one construction site the discipline sanctions.
func isSentinel(pass *analysis.Pass, x ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
