// Fixture for inline //schedlint:allow handling, run in filtered mode: the
// harness applies directives the way the real driver does and surfaces
// malformed or unknown-analyzer directives as "schedlint" diagnostics.
package allow

import "fmt"

//schedlint:hotpath
func hot(n int) error {
	if n < 0 {
		//schedlint:allow sentinelerr -- fixture: sanctioned cold branch (next-line scope)
		return fmt.Errorf("suppressed: %d", n)
	}
	if n == 1 {
		return fmt.Errorf("suppressed inline: %d", n) //schedlint:allow sentinelerr -- fixture: same-line scope
	}
	if n == 2 {
		//schedlint:allow sentinelerr // want `malformed //schedlint:allow directive`
		return fmt.Errorf("reasonless directive suppresses nothing: %d", n) // want `constructs an error per call`
	}
	if n == 3 {
		//schedlint:allow bogus -- typo fixture // want `names unknown analyzer "bogus"`
		return fmt.Errorf("wrong analyzer name suppresses nothing: %d", n) // want `constructs an error per call`
	}
	return nil
}
