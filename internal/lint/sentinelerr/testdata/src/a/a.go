// Fixture for the sentinelerr analyzer.
package a

import (
	"errors"
	"fmt"
)

// ErrRejected stands in for the listsched umbrella sentinel.
var ErrRejected = errors.New("rejected")

//schedlint:hotpath
func hot(err, other error, n int) error {
	if err != nil { // nil compare: fine
		return ErrRejected
	}
	if err == ErrRejected { // sentinel compare: fine
		return nil
	}
	if errors.Is(err, ErrRejected) { // errors.Is: fine
		return nil
	}
	if err == other { // want `comparing two non-sentinel errors`
		return nil
	}
	if err.Error() == "rejected" { // want `comparing err\.Error\(\) text`
		return nil
	}
	switch n {
	case 1:
		return fmt.Errorf("bad n: %d", n) // want `fmt\.Errorf constructs an error per call`
	case 2:
		return errors.New("two") // want `errors\.New constructs an error per call`
	case 3:
		return errors.Join(err, other) // want `errors\.Join constructs an error per call`
	}
	f := func() error { return fmt.Errorf("closures are not the hot loop: %d", n) }
	return f()
}

// cold is unmarked: the same constructs pass.
func cold(err, other error) error {
	if err == other {
		return fmt.Errorf("mismatch: %v", err)
	}
	return errors.New("cold")
}
