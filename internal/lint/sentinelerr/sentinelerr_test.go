package sentinelerr_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sentinelerr.Analyzer, "a")
}

func TestSentinelErrAllowDirectives(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), sentinelerr.Analyzer,
		analysistest.Options{Filtered: true}, "allow")
}
