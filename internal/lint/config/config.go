// Package config holds schedlint's suppression machinery: the repo-level
// .schedlint.conf allowlist and the inline `//schedlint:allow` directive.
//
// Suppressions are deliberately two-tier. The conf file scopes whole files or
// trees ("timing-report code may read the wall clock"); the inline directive
// grants a single line an exemption and forces the author to record why
// ("exact float compare is a deterministic tie-break"). Every other
// occurrence is an error — the invariants the analyzers encode are what make
// the paper-reproduction runs trustworthy, so the default is deny.
package config

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// DefaultFile is the conf file name looked up at the module root.
const DefaultFile = ".schedlint.conf"

// Config is a parsed allowlist.
type Config struct {
	// BaseDir anchors the relative path patterns (the module root).
	BaseDir string
	// Settings holds `set <key> <value>` tuning directives (hotescape's
	// inline budget and grow-helper list, abswitch's test-name pattern).
	// Analyzers read them through analysis.Pass.Setting.
	Settings map[string]string
	rules    []rule
}

type rule struct {
	analyzer string // analyzer name or "*"
	pattern  string // slash-separated path glob, or "dir/..." prefix
}

// Parse reads a conf file. Lines are `allow <analyzer|*> <path-pattern>` or
// `set <key> <value...>`; blank lines and #-comments are ignored. Allow
// patterns are matched against the slash-separated path of the offending file
// relative to BaseDir, either as a path.Match glob (per path element
// semantics do not apply: the glob is matched against the whole relative
// path) or, when the pattern ends in "/...", as a directory-prefix rule in
// the go tool's style. Set directives carry analyzer tuning (see
// analysis.Pass.Setting); re-setting a key overrides the earlier value.
func Parse(file string) (*Config, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg := Empty(filepath.Dir(file))
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "set" && len(fields) >= 3:
			cfg.Settings[fields[1]] = strings.Join(fields[2:], " ")
		case fields[0] == "allow" && len(fields) == 3:
			if _, err := path.Match(strings.TrimSuffix(fields[2], "/..."), ""); err != nil {
				return nil, fmt.Errorf("%s:%d: bad pattern %q: %v", file, lineno, fields[2], err)
			}
			cfg.rules = append(cfg.rules, rule{analyzer: fields[1], pattern: fields[2]})
		default:
			return nil, fmt.Errorf("%s:%d: want `allow <analyzer|*> <path-pattern>` or `set <key> <value>`, got %q", file, lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Empty returns a Config with no rules, anchored at baseDir.
func Empty(baseDir string) *Config {
	return &Config{BaseDir: baseDir, Settings: make(map[string]string)}
}

// Allows reports whether diagnostics of the named analyzer are suppressed for
// the given file (absolute or BaseDir-relative path).
func (c *Config) Allows(analyzer, file string) bool {
	if c == nil {
		return false
	}
	rel := file
	if filepath.IsAbs(file) && c.BaseDir != "" {
		if r, err := filepath.Rel(c.BaseDir, file); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
	}
	rel = filepath.ToSlash(rel)
	for _, r := range c.rules {
		if r.analyzer != "*" && r.analyzer != analyzer {
			continue
		}
		if prefix, ok := strings.CutSuffix(r.pattern, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if ok, _ := path.Match(r.pattern, rel); ok {
			return true
		}
		// Also match against the bare file name so `*_test.go`-style rules
		// work regardless of directory depth.
		if ok, _ := path.Match(r.pattern, path.Base(rel)); ok {
			return true
		}
	}
	return false
}

// allowPrefix introduces an inline suppression comment:
//
//	//schedlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// A trailing comment suppresses its own line; a comment alone on a line
// suppresses the next line. The reason after " -- " is mandatory: an allow
// without a recorded justification is itself reported by the driver.
const allowPrefix = "//schedlint:allow"

// Suppressions indexes the inline allow directives of one file.
type Suppressions struct {
	// byLine maps a source line to the analyzer names allowed there.
	byLine map[int]map[string]bool
	// bad holds positions of malformed directives (missing reason/analyzers).
	bad []token.Pos
	// directives records every well-formed directive for validation: a
	// directive naming an analyzer the driver does not know is a typo that
	// would silently suppress nothing.
	directives []Directive
}

// Directive is one well-formed inline allow: its position and the analyzer
// names it grants.
type Directive struct {
	Pos   token.Pos
	Names []string
}

// Directives returns the well-formed inline directives of the file.
func (s *Suppressions) Directives() []Directive {
	if s == nil {
		return nil
	}
	return s.directives
}

// CollectSuppressions scans a parsed file's comments for inline directives.
func CollectSuppressions(fset *token.FileSet, f *ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[int]map[string]bool)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			spec, reason, hasReason := strings.Cut(text, " -- ")
			names := strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
			if !hasReason || strings.TrimSpace(reason) == "" || len(names) == 0 {
				s.bad = append(s.bad, c.Pos())
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			// A directive alone on its line applies to the following line.
			if startsLine(fset, f, c) {
				line++
			}
			set := s.byLine[line]
			if set == nil {
				set = make(map[string]bool)
				s.byLine[line] = set
			}
			d := Directive{Pos: c.Pos()}
			for _, n := range names {
				n = strings.TrimSpace(n)
				set[n] = true
				d.Names = append(d.Names, n)
			}
			s.directives = append(s.directives, d)
		}
	}
	return s
}

// startsLine reports whether the comment is the first token on its line.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos().IsValid() && n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == pos.Line {
			if _, isFile := n.(*ast.File); !isFile {
				first = false
			}
		}
		return first
	})
	return first
}

// Allows reports whether the named analyzer is suppressed on the line.
func (s *Suppressions) Allows(analyzer string, line int) bool {
	return s != nil && s.byLine[line][analyzer]
}

// Malformed returns positions of directives missing analyzers or a reason.
func (s *Suppressions) Malformed() []token.Pos {
	if s == nil {
		return nil
	}
	return s.bad
}
