package config_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"emts/internal/lint/config"
)

func parseConf(t *testing.T, text string) (*config.Config, error) {
	t.Helper()
	file := filepath.Join(t.TempDir(), config.DefaultFile)
	if err := os.WriteFile(file, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return config.Parse(file)
}

func TestParseSettingsAndAllows(t *testing.T) {
	cfg, err := parseConf(t, `
# comment lines and blanks are ignored

allow nowallclock internal/report/...
allow * cmd/bench/main.go
allow floateq *_test.go
set hotescape.inline-budget 2
set hotescape.grow-helpers grow, growScratch
set hotescape.inline-budget 3
`)
	if err != nil {
		t.Fatal(err)
	}

	if got := cfg.Settings["hotescape.inline-budget"]; got != "3" {
		t.Errorf("re-set key: got %q, want later value %q", got, "3")
	}
	if got := cfg.Settings["hotescape.grow-helpers"]; got != "grow, growScratch" {
		t.Errorf("multi-word set value: got %q", got)
	}

	for _, tc := range []struct {
		analyzer, file string
		want           bool
	}{
		{"nowallclock", "internal/report/timing.go", true},        // dir/... prefix
		{"nowallclock", "internal/report", true},                  // the prefix dir itself
		{"nowallclock", "internal/reporting/timing.go", false},    // prefix needs a path boundary
		{"floateq", "internal/report/timing.go", false},           // analyzer-scoped rule
		{"anything", "cmd/bench/main.go", true},                   // * matches every analyzer
		{"anything", "cmd/bench/other.go", false},                 // exact glob
		{"floateq", "internal/deep/nested/lattice_test.go", true}, // base-name glob at any depth
	} {
		if got := cfg.Allows(tc.analyzer, tc.file); got != tc.want {
			t.Errorf("Allows(%q, %q) = %v, want %v", tc.analyzer, tc.file, got, tc.want)
		}
	}

	// Absolute paths are matched relative to the conf file's directory.
	abs := filepath.Join(cfg.BaseDir, "internal", "report", "timing.go")
	if !cfg.Allows("nowallclock", abs) {
		t.Errorf("Allows should resolve absolute paths against BaseDir")
	}

	var nilCfg *config.Config
	if nilCfg.Allows("x", "y") {
		t.Errorf("nil Config must allow nothing")
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	for _, bad := range []string{
		"allow onlytwo\n",       // missing pattern
		"allow floateq a b\n",   // too many fields
		"set just.a.key\n",      // set without a value
		"allow floateq [\n",     // malformed glob
		"permit floateq x.go\n", // unknown verb
	} {
		if _, err := parseConf(t, bad); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
}

const directiveSrc = `package p

func f() {
	x() //schedlint:allow floateq -- same-line reason
	//schedlint:allow hotalloc,mapiterorder -- next-line reason
	y()
	//schedlint:allow floateq
	z()
	w() //schedlint:allow -- analyzers missing
}
`

func TestCollectSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := config.CollectSuppressions(fset, f)

	// Trailing directive scopes its own line; a directive alone on its line
	// scopes the next line.
	checks := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"floateq", 4, true},      // trailing: own line
		{"floateq", 5, false},     // does not leak downward
		{"hotalloc", 6, true},     // standalone: next line
		{"mapiterorder", 6, true}, // comma list: both names
		{"hotalloc", 5, false},    // not its own line
		{"floateq", 6, false},     // line scope is per analyzer
		{"floateq", 8, false},     // reasonless directive grants nothing
	}
	for _, c := range checks {
		if got := sup.Allows(c.analyzer, c.line); got != c.want {
			t.Errorf("Allows(%q, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}

	// Both malformed shapes — missing reason, missing analyzer list — are
	// recorded for the driver to report.
	bad := sup.Malformed()
	if len(bad) != 2 {
		t.Fatalf("Malformed: got %d positions, want 2", len(bad))
	}
	if l := fset.Position(bad[0]).Line; l != 7 {
		t.Errorf("first malformed directive at line %d, want 7", l)
	}
	if l := fset.Position(bad[1]).Line; l != 9 {
		t.Errorf("second malformed directive at line %d, want 9", l)
	}

	// Well-formed directives are retained for unknown-analyzer validation.
	ds := sup.Directives()
	if len(ds) != 2 {
		t.Fatalf("Directives: got %d, want 2", len(ds))
	}
	if got := ds[1].Names; len(got) != 2 || got[0] != "hotalloc" || got[1] != "mapiterorder" {
		t.Errorf("second directive names = %v", got)
	}

	var nilSup *config.Suppressions
	if nilSup.Allows("x", 1) || nilSup.Malformed() != nil || nilSup.Directives() != nil {
		t.Errorf("nil Suppressions must be inert")
	}
}

// TestTierPrecedence documents the two suppression tiers' interplay the driver
// implements: a conf rule silences a whole file for one analyzer while inline
// directives stay line- and analyzer-scoped — either tier alone suffices, and
// neither widens the other.
func TestTierPrecedence(t *testing.T) {
	cfg, err := parseConf(t, "allow floateq internal/report/...\n")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := config.CollectSuppressions(fset, f)

	file := "internal/report/timing.go"
	// File tier: every floateq line in the file, any line number.
	if !cfg.Allows("floateq", file) {
		t.Errorf("conf tier should allow floateq anywhere in %s", file)
	}
	// Line tier: hotalloc is only allowed on its directive's target line.
	if cfg.Allows("hotalloc", file) {
		t.Errorf("conf tier must not cover analyzers it does not name")
	}
	if !sup.Allows("hotalloc", 6) || sup.Allows("hotalloc", 99) {
		t.Errorf("inline tier must stay line-scoped")
	}
}
