// Fixture for the hotalloc analyzer.
package a

import "fmt"

// hot is the instrumented fitness kernel stand-in.
//
//schedlint:hotpath
func hot(xs []float64, n int) float64 {
	_ = fmt.Sprintf("%d", n) // want `fmt\.Sprintf formats through interfaces and allocates`

	var out []float64
	out = append(out, 1) // want `append to out, declared without capacity`

	grow := make([]float64, 0)
	grow = append(grow, 2) // want `append to grow, declared without capacity`

	lit := []float64{}
	lit = append(lit, 3) // want `append to lit, declared without capacity`

	sized := make([]float64, 0, n)
	sized = append(sized, 4) // preallocated: not flagged

	total := 0.0
	add := func() { total += xs[0] } // want `closure captures`
	add()

	_ = interface{}(n) // want `conversion to interface\{\} boxes the operand`

	box(n) // want `argument boxes int into interface\{\}`

	_ = out
	_ = grow
	_ = lit
	_ = sized
	return total
}

// cold is unmarked: the same constructs pass.
func cold(n int) string {
	var out []int
	out = append(out, n)
	f := func() int { return n }
	return fmt.Sprintf("%d-%d", out[0], f())
}

// hotAppendToParam appends to caller-owned storage: capacity is the caller's
// contract, not this function's.
//
//schedlint:hotpath
func hotAppendToParam(dst []int, v int) []int {
	return append(dst, v)
}

func box(v interface{}) {}
