package hotalloc_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "a")
}
