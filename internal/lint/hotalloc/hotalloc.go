// Package hotalloc guards the zero-allocation contract of functions marked
// with a `//schedlint:hotpath` doc-comment line.
//
// PR 1 made the fitness path (listsched.Mapper, ea.evalEngine) allocation-
// free on the warm path, and bench_test.go asserts it dynamically — but only
// for the code shapes the benchmark happens to execute. This analyzer pins
// the property statically for every marked function by flagging the four
// constructs that quietly reintroduce per-call allocations:
//
//   - calls into package fmt (formatting boxes every operand),
//   - interface conversions, explicit or implicit at call boundaries
//     (boxing escapes to the heap for non-pointer-shaped values),
//   - closures that capture variables (the closure and its captures
//     allocate),
//   - append to a slice declared in-function without capacity (growth
//     reallocates on every call instead of reusing an arena).
//
// Cold paths inside a hot function (error returns, once-per-run setup) carry
// an inline `//schedlint:allow hotalloc -- <reason>`.
package hotalloc

import (
	"go/ast"
	"go/types"

	"emts/internal/lint/analysis"
	"emts/internal/lint/hotmark"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = hotmark.Marker

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "hotalloc: flag allocating constructs inside //schedlint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotmark.IsHotPath(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if cap := capturedVar(pass, e, fn); cap != "" {
				pass.Reportf(e.Pos(),
					"hot path %s: closure captures %s and allocates per call; hoist it or pass state explicitly", name, cap)
			}
			return false // the literal's own body is not the hot path
		case *ast.CallExpr:
			checkCall(pass, e, fn, name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, fn *ast.FuncDecl, name string) {
	// Explicit conversion to an interface type: T -> interface boxes.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !types.IsInterface(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "hot path %s: conversion to %s boxes the operand", name, tv.Type.String())
		}
		return
	}
	if callee := pass.CalleeFunc(call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s: fmt.%s formats through interfaces and allocates", name, callee.Name())
		return
	}
	if isBuiltinAppend(pass, call) {
		checkAppend(pass, call, fn, name)
		return
	}
	// Implicit boxing: concrete argument passed for an interface parameter.
	sig, ok := typeUnder(pass.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"hot path %s: argument boxes %s into %s", name, at.String(), pt.String())
	}
}

// paramType resolves the parameter type for argument i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// checkAppend flags appends whose base slice is declared in this function
// without preallocated capacity.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, fn *ast.FuncDecl, name string) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.ObjectOf(base)
	if obj == nil || obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return // parameter/field/outer state: caller controls capacity
	}
	if noCapacity(pass, fn, obj) {
		pass.Reportf(call.Pos(),
			"hot path %s: append to %s, declared without capacity; preallocate with make(len, cap) or reuse an arena", name, base.Name)
	}
}

// noCapacity reports whether the variable's declaration provably starts with
// zero spare capacity: `var x []T`, `x := []T{}`, or 2-argument make.
func noCapacity(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	result := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			for i, nm := range d.Names {
				if pass.ObjectOf(nm) != obj {
					continue
				}
				if len(d.Values) == 0 {
					result = true // var x []T
				} else if i < len(d.Values) {
					result = initHasNoCapacity(pass, d.Values[i])
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					result = initHasNoCapacity(pass, d.Rhs[i])
				}
			}
		}
		return true
	})
	return result
}

func initHasNoCapacity(pass *analysis.Pass, init ast.Expr) bool {
	switch e := ast.Unparen(init).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" {
				return len(e.Args) < 3 // make([]T, n): len but no spare cap
			}
		}
	}
	return false
}

// capturedVar returns the name of a variable the closure captures from the
// enclosing function, or "" if it captures nothing.
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit, fn *ast.FuncDecl) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal. Package-level variables are direct references, not
		// captures.
		if v.Pos() >= fn.Pos() && v.Pos() < lit.Pos() {
			captured = v.Name()
		}
		return true
	})
	return captured
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
