// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that schedlint's analyzers need.
//
// The real x/tools module is deliberately not vendored: the build environment
// for this repository is offline and the module has no third-party
// dependencies. The subset implemented here — Analyzer, Pass, Diagnostic, and
// positional reporting — is API-compatible with x/tools, so every analyzer
// under internal/lint can be ported to a stock multichecker verbatim if the
// dependency ever becomes available (see DESIGN.md §9).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name must be a valid identifier; Doc
// should start with "<name>: " followed by a one-line summary, like vet's
// analyzers.
type Analyzer struct {
	Name string
	Doc  string
	// Run applies the check to one package and reports diagnostics through
	// pass.Report. The returned value is ignored by the schedlint driver (it
	// exists for x/tools API compatibility, where analyzers export facts).
	Run func(*Pass) (interface{}, error)
	// NeedsGCDiags asks the driver to populate Pass.GCDiags with compiler
	// escape/inline diagnostics (`go build -gcflags=-m`) before Run. Only
	// analyzers that consume compiler facts (hotescape) set it; the build is
	// skipped entirely when no selected analyzer needs it.
	NeedsGCDiags bool
}

// Pass is the interface between the driver and one Analyzer.Run application:
// one type-checked package plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Dir is the package's source directory (empty when unknown). Analyzers
	// that consult sources beyond the package — abswitch's module-wide test
	// index — anchor their lookups here.
	Dir string
	// GCDiags holds the compiler's -m diagnostics for this package, populated
	// by the driver when Analyzer.NeedsGCDiags is set (see package gcdiag).
	GCDiags []GCDiag
	// Settings carries the `set <key> <value>` directives of .schedlint.conf
	// (nil when no conf is loaded). Analyzers read tuning knobs — inline
	// budgets, sanctioned grow helpers — through Setting.
	Settings map[string]string
}

// GCDiag is one compiler diagnostic from `go build -gcflags=-m`: a position
// plus the raw message ("moved to heap: x", "inlining call to f", ...).
type GCDiag struct {
	File      string // absolute path
	Line, Col int
	Message   string
}

// Setting returns the configured value for key, or def when unset.
func (p *Pass) Setting(key, def string) string {
	if v, ok := p.Settings[key]; ok {
		return v
	}
	return def
}

// PosFor maps a (file, line, col) triple — e.g. a compiler diagnostic
// position — to a token.Pos inside the pass's file set, or token.NoPos if the
// file is not part of the pass.
func (p *Pass) PosFor(file string, line, col int) token.Pos {
	for i, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil || tf.Name() != file {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return p.Files[i].Pos()
		}
		pos := tf.LineStart(line)
		if col > 1 {
			pos += token.Pos(col - 1)
		}
		if end := token.Pos(tf.Base() + tf.Size()); pos > end {
			pos = end
		}
		return pos
	}
	return token.NoPos
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectOf is a nil-safe shorthand for TypesInfo.ObjectOf.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// TypeOf is a nil-safe shorthand for TypesInfo.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// IsPkgFunc reports whether the call expression invokes the package-level
// function pkgPath.name (e.g. "time", "Now"). It resolves the selector
// through the type info, so aliased imports are handled.
func (p *Pass) IsPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && !isMethod(fn)
}

// CalleeFunc returns the *types.Func a call statically resolves to, or nil
// for calls through function values, built-ins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
