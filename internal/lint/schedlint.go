// Package lint registers the schedlint analyzer suite: the statically
// enforced determinism and hot-path invariants of this repository.
// DESIGN.md §9 documents each analyzer and the methodology argument behind
// it; cmd/schedlint is the multichecker binary.
package lint

import (
	"emts/internal/lint/abswitch"
	"emts/internal/lint/analysis"
	"emts/internal/lint/floateq"
	"emts/internal/lint/hotalloc"
	"emts/internal/lint/hotescape"
	"emts/internal/lint/islandrng"
	"emts/internal/lint/lockscope"
	"emts/internal/lint/mapiterorder"
	"emts/internal/lint/norandglobal"
	"emts/internal/lint/nowallclock"
	"emts/internal/lint/sentinelerr"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		abswitch.Analyzer,
		floateq.Analyzer,
		hotalloc.Analyzer,
		hotescape.Analyzer,
		islandrng.Analyzer,
		lockscope.Analyzer,
		mapiterorder.Analyzer,
		norandglobal.Analyzer,
		nowallclock.Analyzer,
		sentinelerr.Analyzer,
	}
}

// Names returns the names of every registered analyzer, in suite order. The
// driver validates inline //schedlint:allow directives against this set.
func Names() []string {
	all := Analyzers()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// ByName resolves a comma-separated analyzer selection; an empty selection
// means all.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	if len(names) == 0 {
		return Analyzers(), true
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
