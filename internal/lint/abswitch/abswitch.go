// Package abswitch enforces A/B-coverage of the repository's ablation
// switches: every `Disable*` config field must be exercised by at least one
// determinism test.
//
// The perf layers ship behind paired switches (core.Params.DisableCache,
// ea.Config.DisableBatch, server.Config.DisableInterning, ...) precisely so
// tests can assert the paper-facing property: each optimization changes
// nothing but speed, bit for bit. That methodology argument only holds while
// every switch actually appears in such a test — an optimization added with
// a switch but no on/off comparison is unverified, and a switch silently
// dropped from a test during a refactor is a coverage hole no human diff
// review reliably catches.
//
// The analyzer inventories bool struct fields matching the switch pattern
// (default `^Disable`) in the package under analysis, then checks each one
// is referenced by name inside a determinism-flavored test function —
// Test/Benchmark/Fuzz functions whose names match the test pattern (default
// case-insensitive `determin|identical|identity|bitident|lattice`) —
// anywhere in the module's *_test.go files. Because the driver never loads
// test files, the analyzer builds that index itself, syntactically, once per
// module root, skipping testdata and hidden directories.
//
// Conf knobs: `set abswitch.field-pattern <re>` widens the switch inventory,
// `set abswitch.test-pattern <re>` the recognized test names, and
// `set abswitch.index-root <dir>` pins the tree to index (fixtures use it;
// the default walks up from the package directory to the enclosing go.mod).
package abswitch

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "abswitch",
	Doc:  "abswitch: every Disable* A/B switch must be referenced by a determinism test",
	Run:  run,
}

const (
	defaultFieldPattern = `^Disable`
	defaultTestPattern  = `(?i)determin|identical|identity|bitident|lattice`
)

func run(pass *analysis.Pass) (interface{}, error) {
	fieldRE, err := regexp.Compile(pass.Setting("abswitch.field-pattern", defaultFieldPattern))
	if err != nil {
		return nil, err
	}
	switches := inventory(pass, fieldRE)
	if len(switches) == 0 {
		return nil, nil
	}

	testRE, err := regexp.Compile(pass.Setting("abswitch.test-pattern", defaultTestPattern))
	if err != nil {
		return nil, err
	}
	root := indexRoot(pass)
	if root == "" {
		return nil, nil // no module root: nothing to index against
	}
	covered := coveredNames(root, testRE)
	for _, sw := range switches {
		if covered[sw.name] {
			continue
		}
		pass.Reportf(sw.pos,
			"A/B switch %s.%s is not referenced by any determinism test (name matching %q); add an on/off bit-identity test or retire the switch",
			sw.owner, sw.name, testRE.String())
	}
	return nil, nil
}

type switchField struct {
	owner string // declaring struct type
	name  string
	pos   token.Pos
}

// inventory collects the package's bool struct fields matching the switch
// pattern. Test files never declare production switches and are excluded
// (the vet protocol hands the analyzer test variants too).
func inventory(pass *analysis.Pass, fieldRE *regexp.Regexp) []switchField {
	var out []switchField
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !isBool(pass, field.Type) {
						continue
					}
					for _, nm := range field.Names {
						if fieldRE.MatchString(nm.Name) {
							out = append(out, switchField{owner: ts.Name.Name, name: nm.Name, pos: nm.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

func isBool(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// indexRoot resolves the directory whose *_test.go files form the coverage
// universe: the abswitch.index-root setting (absolute or relative to the
// package dir), else the nearest ancestor of the package dir with a go.mod.
func indexRoot(pass *analysis.Pass) string {
	if r := pass.Setting("abswitch.index-root", ""); r != "" {
		if !filepath.IsAbs(r) {
			r = filepath.Join(pass.Dir, r)
		}
		return r
	}
	dir := pass.Dir
	for dir != "" {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
	return ""
}

// indexCache memoizes the per-root coverage index: the driver analyzes every
// package of the module in one process, and the index is module-global.
var indexCache sync.Map // root|pattern -> map[string]bool

// coveredNames returns every identifier name referenced inside a
// determinism-flavored test function under root.
func coveredNames(root string, testRE *regexp.Regexp) map[string]bool {
	key := root + "\x00" + testRE.String()
	if v, ok := indexCache.Load(key); ok {
		return v.(map[string]bool)
	}
	covered := make(map[string]bool)
	fset := token.NewFileSet()
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "artifacts" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return nil // unparsable test file: not this analyzer's problem
		}
		// Pass 1: names used directly inside matching test bodies. Pass 2:
		// test tables are idiomatically package-level — `var cases = ...` or a
		// `func perfConfigs() map[...]Config` helper — so expand through
		// package-level declarations whose name a covered identifier reaches,
		// transitively. Non-matching Test funcs are not helpers and do not
		// propagate (a test never calls another test by name).
		decls := make(map[string][]string) // package-level decl name -> idents inside it
		var direct []string
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				switch {
				case isTestFunc(d.Name.Name) && testRE.MatchString(d.Name.Name):
					direct = append(direct, identsIn(d.Body)...)
				case !isTestFunc(d.Name.Name) && d.Recv == nil:
					decls[d.Name.Name] = append(decls[d.Name.Name], identsIn(d.Body)...)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					var ids []string
					for _, v := range vs.Values {
						ids = append(ids, identsIn(v)...)
					}
					for _, nm := range vs.Names {
						decls[nm.Name] = append(decls[nm.Name], ids...)
					}
				}
			}
		}
		for len(direct) > 0 {
			name := direct[len(direct)-1]
			direct = direct[:len(direct)-1]
			if covered[name] {
				continue
			}
			covered[name] = true
			direct = append(direct, decls[name]...)
		}
		return nil
	})
	indexCache.Store(key, covered)
	return covered
}

func isTestFunc(name string) bool {
	return strings.HasPrefix(name, "Test") || strings.HasPrefix(name, "Benchmark") || strings.HasPrefix(name, "Fuzz")
}

func identsIn(n ast.Node) []string {
	var out []string
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			out = append(out, id.Name)
		}
		return true
	})
	return out
}
