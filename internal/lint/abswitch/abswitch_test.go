package abswitch_test

import (
	"testing"

	"emts/internal/lint/abswitch"
	"emts/internal/lint/analysistest"
)

func TestABSwitch(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), abswitch.Analyzer,
		analysistest.Options{Settings: map[string]string{"abswitch.index-root": "."}}, "a")
}

func TestABSwitchAllowDirectives(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), abswitch.Analyzer,
		analysistest.Options{
			Filtered: true,
			Settings: map[string]string{"abswitch.index-root": "."},
		}, "allow")
}
