// Fixture for abswitch //schedlint:allow handling (filtered mode). No test
// files exist under the pinned index root, so both switches are uncovered;
// only the sanctioned one is suppressed.
package allow

type Flags struct {
	//schedlint:allow abswitch -- fixture: switch lands with its determinism test in the next change
	DisableSanctioned bool
	DisableNaked      bool // want `A/B switch Flags\.DisableNaked is not referenced by any determinism test`
}
