package a

import "testing"

var identityCases = []Config{{DisableVar: true}}

func determConfigs() []Config {
	return []Config{{DisableHelper: true}}
}

func TestBitIdenticalSwitches(t *testing.T) {
	c := Config{DisableCache: true}
	_ = c
	_ = identityCases
	_ = determConfigs()
}

func TestOther(t *testing.T) {
	c := Config{DisableWrongTest: true}
	_ = c
}
