// Fixture for the abswitch analyzer. The sibling a_test.go supplies the
// coverage universe (abswitch.index-root pins the index to this directory):
// DisableCache is referenced directly in a determinism test, DisableVar
// through a package-level test table, DisableHelper through a non-test helper
// function — all three count. DisableOrphan appears in no test, and
// DisableWrongTest only in a test whose name has no determinism flavor.
package a

type Config struct {
	DisableCache     bool
	DisableVar       bool
	DisableHelper    bool
	DisableOrphan    bool // want `A/B switch Config\.DisableOrphan is not referenced by any determinism test`
	DisableWrongTest bool // want `A/B switch Config\.DisableWrongTest is not referenced by any determinism test`
	Threshold        int
	Verbose          bool
}
