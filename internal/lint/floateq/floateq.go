// Package floateq flags == and != between floating-point values.
//
// Makespans, bottom levels, and execution times are float64 sums of float64
// products; two mathematically equal schedules can differ in the last ulp
// depending on summation order, so exact comparison silently encodes an
// order-of-operations assumption. Comparisons belong in the epsilon helpers
// of internal/stats (stats.ApproxEqual / stats.ApproxEqualTol, allowlisted in
// .schedlint.conf). The deliberate exceptions — deterministic tie-breaks that
// *want* bit equality, like the mapper's (bottom level, task ID) order — must
// carry an inline `//schedlint:allow floateq -- <reason>` so the intent is
// recorded at the comparison site.
//
// Comparisons with a compile-time constant operand (`if ms == 0`,
// `if p == 0.5`) are exempt: they are guards against exactly representable
// sentinels, not equality between computed quantities.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "floateq: flag ==/!= on floating-point values outside the internal/stats epsilon helpers",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// Comparisons against compile-time constants are exempt: exact
			// zero guards (`if makespan == 0` before dividing) and
			// special-case shortcuts (`if p == 0.5`) compare against exactly
			// representable values that arise from initialization, not from
			// accumulated arithmetic. The dangerous case — two computed
			// values expected to agree — always has variables on both sides.
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: use stats.ApproxEqual, or annotate a deliberate exact tie-break with //schedlint:allow floateq", be.Op)
			return true
		})
	}
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
