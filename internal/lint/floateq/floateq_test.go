package floateq_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floateq.Analyzer, "a")
}
