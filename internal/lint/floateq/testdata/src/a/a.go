// Fixture for the floateq analyzer.
package a

type makespan float64

func compare(a, b float64, m, n makespan, i, j int) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	// Constant-operand guards are exempt: exactly representable sentinels.
	if a != 0 {
		return false
	}
	if b == 0.5 {
		return false
	}
	if m == n { // want `floating-point == comparison`
		return true
	}
	// Integer equality is exact; not flagged.
	if i == j {
		return true
	}
	// Ordering comparisons are meaningful on floats; not flagged.
	return a < b || a >= b
}

// Constant comparisons are decided at compile time; not flagged.
const eps = 1e-9

var exact = eps == 1e-9
