// Fixture for the mapiterorder analyzer.
package a

import (
	"fmt"
	"sort"
	"strings"
)

// unsortedKeys leaks map order into the returned slice.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range-over-map with no subsequent sort`
	}
	return keys
}

// sortedKeys is the sanctioned collect-then-sort idiom; not flagged.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printLoop writes in map order.
func printLoop(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `ordered output via fmt\.Fprintf`
		sb.WriteString(k)                // want `ordered output via Builder\.WriteString`
	}
}

// firstMatch returns an arbitrary element.
func firstMatch(m map[string]int) (string, bool) {
	for k, v := range m {
		if v > 10 {
			return k, true // want `which element returns first depends on map order`
		}
	}
	return "", false
}

// lastWins keeps whichever key the runtime visits last.
func lastWins(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `assignment to last inside range-over-map depends on iteration order`
	}
	return last
}

// argmin: the minimum value is deterministic, the arg on ties is not.
func argmin(m map[string]int) (string, int) {
	bestK, best := "", 1<<62
	for k, v := range m {
		if v < best {
			best = v
			bestK = k // want `assignment to bestK inside range-over-map`
		}
	}
	return bestK, best
}

// reductions are order-independent; not flagged.
func sum(m map[string]float64) float64 {
	total := 0.0
	n := 0
	for _, v := range m {
		total += v
		n++
	}
	if n == 0 {
		return 0
	}
	return total
}

// strict min tracking is order-independent; not flagged.
func minValue(m map[string]float64) float64 {
	lo := 1e308
	for _, v := range m {
		if v < lo {
			lo = v
		}
	}
	return lo
}

// non-strict guard makes ties last-wins; flagged.
func minValueTieLastWins(m map[string]float64) float64 {
	lo := 1e308
	for _, v := range m {
		if v <= lo {
			lo = v // want `assignment to lo inside range-over-map`
		}
	}
	return lo
}

// keyed writes are order-independent; not flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

type outcome struct {
	err  error
	errs map[string]error
	last string
}

// fieldLastWins: a field write names one location exactly like a plain
// identifier, so which element's error survives depends on map order.
func fieldLastWins(m map[string]error) outcome {
	var out outcome
	for k, err := range m {
		if err != nil {
			out.err = fmt.Errorf("%s: %w", k, err) // want `assignment to out\.err inside range-over-map depends on iteration order`
		}
	}
	return out
}

// fieldKeyedWrites: indexing a field's map by the iteration key is still
// keyed per element; not flagged.
func fieldKeyedWrites(m map[string]error) outcome {
	out := outcome{errs: make(map[string]error, len(m))}
	for k, err := range m {
		out.errs[k] = err
	}
	return out
}

// invariantIndexLastWins: a loop-invariant index is a single location, so
// the write is last-wins just like a plain identifier.
func invariantIndexLastWins(m map[string]int, dst []string) {
	for k := range m {
		dst[0] = k // want `assignment to dst\[0\] inside range-over-map depends on iteration order`
	}
}

// fieldStrictExtremum: strict min tracking through a field is still
// order-independent; not flagged.
func fieldStrictExtremum(m map[string]string) outcome {
	out := outcome{last: "\xff"}
	for _, v := range m {
		if v < out.last {
			out.last = v
		}
	}
	return out
}
