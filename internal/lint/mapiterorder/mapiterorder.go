// Package mapiterorder flags `range` over maps whose iteration order can
// escape into results.
//
// Go randomizes map iteration order per run, so any value that depends on it
// — a slice built by appends, text written to a builder, a "first match
// wins" assignment — differs between two executions of the same seed. In
// this repository that breaks the core contract that equal seeds give
// bit-identical schedules, histories, and report files.
//
// The analyzer is deliberately semantic, not syntactic: order-independent
// uses of map ranges stay legal. It permits
//
//   - pure reads and writes keyed by the iteration variable (out[k] = f(v)),
//   - commutative reductions via compound assignment (sum += v, n++),
//   - strict min/max tracking (if v < best { best = v }), where the reduced
//     value is order-independent even though the visit order is not,
//   - key collection that is sorted before use (append then sort.Strings).
//
// It reports
//
//   - appends to outer slices with no subsequent sort of that slice,
//   - ordered output from inside the loop (fmt.Fprintf, Builder.WriteString,
//     io writes),
//   - plain assignments to outer variables and returns that mention the
//     iteration state: which element wins depends on map order. This
//     includes argmin/argmax tracking (if v < best { best = v; bestK = k }) —
//     the min is deterministic, but on ties the *arg* is not.
package mapiterorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "mapiterorder",
	Doc:  "mapiterorder: flag range-over-map loops whose iteration order escapes into results",
	Run:  run,
}

// checker carries the per-file indexes one run needs.
type checker struct {
	pass *analysis.Pass
	// guardOf maps an assignment to the if statement whose single-statement
	// body it is, so the strict-extremum pattern can find its guard without
	// general parent tracking.
	guardOf map[*ast.AssignStmt]*ast.IfStmt
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		c := &checker{pass: pass, guardOf: make(map[*ast.AssignStmt]*ast.IfStmt)}
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			for _, stmt := range ifStmt.Body.List {
				if as, ok := stmt.(*ast.AssignStmt); ok {
					c.guardOf[as] = ifStmt
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				rs, ok := m.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := typeUnder(pass.TypeOf(rs.X)).(*types.Map); !isMap {
					return true
				}
				c.checkRange(rs, body)
				return true
			})
			return true
		})
	}
	return nil, nil
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// checkRange analyzes one range-over-map statement. funcBody is the enclosing
// function body, searched for post-loop sorts of appended slices.
func (c *checker) checkRange(rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	pass := c.pass
	iterVars := c.rangeVarObjects(rs)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if name, ok := c.orderedOutputCall(st); ok {
				pass.Reportf(st.Pos(),
					"map iteration order reaches ordered output via %s: iterate over sorted keys instead", name)
			}
		case *ast.AssignStmt:
			c.checkAssign(st, rs, funcBody, iterVars)
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if c.mentionsAny(res, iterVars) {
					pass.Reportf(st.Pos(),
						"return inside range-over-map mentions the iteration variable: which element returns first depends on map order")
					break
				}
			}
		}
		return true
	})
}

// rangeVarObjects returns the objects of the loop's key/value variables.
func (c *checker) rangeVarObjects(rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// checkAssign classifies one assignment inside the loop body.
func (c *checker) checkAssign(st *ast.AssignStmt, rs *ast.RangeStmt, funcBody *ast.BlockStmt, iterVars map[types.Object]bool) {
	// Compound assignments (sum += v, n |= x) are commutative-ish reductions;
	// the repo accepts the float-addition caveat in exchange for not flagging
	// every accumulator. Plain = is examined below.
	if st.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range st.Lhs {
		// Resolve the written location to its base identifier. Plain idents
		// and field writes (out.err = ...) name ONE location, so last-wins
		// order dependence applies to them alike; indexed writes are keyed
		// per element and exempt only when the key itself varies with the
		// iteration (out[k] = v) — a loop-invariant index is again a single
		// location.
		var id *ast.Ident
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			id = l
		case *ast.SelectorExpr:
			id = baseIdent(l.X)
		case *ast.IndexExpr:
			if c.mentionsAny(l.Index, iterVars) || c.dependsOnLoop(l.Index, rs) {
				continue // keyed by the iteration element: order-independent
			}
			id = baseIdent(l.X)
		}
		if id == nil {
			continue
		}
		obj := c.pass.ObjectOf(id)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		target := types.ExprString(lhs)
		rhs := st.Rhs[0]
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isBuiltinAppend(call) {
			if !c.sortedAfter(obj, rs, funcBody) {
				c.pass.Reportf(st.Pos(),
					"append to %s inside range-over-map with no subsequent sort: element order depends on map iteration", target)
			}
			continue
		}
		if !c.mentionsAny(rhs, iterVars) && !c.dependsOnLoop(rhs, rs) {
			continue // assigning something loop-invariant; last-wins is still the same value
		}
		if c.isStrictExtremum(st, target, rhs) {
			continue // if v < best { best = v }: the extremum is order-independent
		}
		c.pass.Reportf(st.Pos(),
			"assignment to %s inside range-over-map depends on iteration order: which element wins is nondeterministic", target)
	}
}

// baseIdent walks selector/index chains (a.b[i].c → a) to the root
// identifier, or nil when the base is not an identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (i.e. it survives the loop).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// mentionsAny reports whether expr references one of the given objects.
func (c *checker) mentionsAny(expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[c.pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// dependsOnLoop reports whether expr references any variable declared inside
// the loop (which transitively carries the iteration variables).
func (c *checker) dependsOnLoop(expr ast.Expr, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := c.pass.ObjectOf(id); obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			found = true
		}
		return !found
	})
	return found
}

// isStrictExtremum recognizes the order-independent min/max pattern: the
// assignment sits directly in an if body whose guard is a strict < or >
// comparing the assigned variable with the assigned expression. Non-strict
// guards (<=, >=) stay flagged: they make ties last-wins, which map order
// decides. In argmin tracking (if v < best { best = v; bestK = k }) the
// carve-out applies to `best = v` only — `bestK = k` is still reported,
// because on a fitness tie the winning key is whichever the runtime visits
// first.
func (c *checker) isStrictExtremum(st *ast.AssignStmt, lhs string, rhs ast.Expr) bool {
	ifStmt, ok := c.guardOf[st]
	if !ok || ifStmt.Else != nil {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) {
		return false
	}
	l, r := types.ExprString(cond.X), types.ExprString(cond.Y)
	a, b := types.ExprString(rhs), lhs
	return (l == a && r == b) || (l == b && r == a)
}

// isBuiltinAppend reports whether the call is the append builtin.
func (c *checker) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedOutputCall reports whether the call writes to an ordered sink:
// fmt printing, builder/buffer/writer Write methods.
func (c *checker) orderedOutputCall(call *ast.CallExpr) (string, bool) {
	fn := c.pass.CalleeFunc(call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		return "fmt." + fn.Name(), true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Write") {
		return recvTypeName(sig) + "." + fn.Name(), true
	}
	return "", false
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// sortedAfter reports whether a sort/slices call mentioning obj appears in
// the enclosing function after the range statement.
func (c *checker) sortedAfter(obj types.Object, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return !found
		}
		fn := c.pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return !found
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			if c.mentionsAny(arg, map[types.Object]bool{obj: true}) {
				found = true
			}
		}
		return !found
	})
	return found
}
