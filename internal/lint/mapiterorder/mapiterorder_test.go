package mapiterorder_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/mapiterorder"
)

func TestMapIterOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mapiterorder.Analyzer, "a")
}
