// Package nowallclock forbids reading the wall clock.
//
// Simulated time is the only time that exists inside the scheduler: schedules
// are functions of task costs, not of when the host happened to run the code.
// A time.Now leaking into scheduling or fitness logic makes runs
// irreproducible in a way no seed can fix. The only sanctioned readers are
// the timing-report paths (the Section V-B run-time table and the CLI's
// elapsed-time reporting), which are allowlisted by file in .schedlint.conf —
// not by this analyzer — so new call sites are deny-by-default.
package nowallclock

import (
	"go/ast"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "nowallclock: forbid time.Now/Since/Until outside allowlisted timing-report files",
	Run:  run,
}

// banned are the time-package functions that read the wall clock. Timer and
// ticker constructors are left to the race detector and code review: they
// block on real time but do not put a timestamp into scheduling data.
var banned = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s: schedulers must be functions of their inputs; allowlist timing-report files in .schedlint.conf", fn.Name())
			return true
		})
	}
	return nil, nil
}
