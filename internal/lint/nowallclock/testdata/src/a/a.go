// Fixture for the nowallclock analyzer.
package a

import "time"

func timed() time.Duration {
	start := time.Now() // want `wall-clock read time\.Now`
	work()
	return time.Since(start) // want `wall-clock read time\.Since`
}

func deadline(d time.Time) time.Duration {
	return time.Until(d) // want `wall-clock read time\.Until`
}

// Durations, formatting, and parsing are fine: they are pure values.
func pure() (time.Duration, error) {
	d := 3 * time.Second
	_, err := time.ParseDuration("1h")
	return d, err
}

func work() {}
