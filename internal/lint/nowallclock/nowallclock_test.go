package nowallclock_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nowallclock.Analyzer, "a")
}
