// Package hotmark defines the `//schedlint:hotpath` annotation shared by the
// hot-path analyzers (hotalloc, hotescape, sentinelerr). A function carrying
// the marker in its doc comment opts into the zero-allocation and
// sentinel-error disciplines of DESIGN.md §9/§14; the analyzers enforce them
// statically.
package hotmark

import (
	"go/ast"
	"strings"
)

// Marker is the doc-comment line that opts a function into the hot-path
// checks.
const Marker = "//schedlint:hotpath"

// IsHotPath reports whether the function declaration carries the marker.
func IsHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

// Funcs returns the hot-path function declarations of a file, in source
// order.
func Funcs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && IsHotPath(fn) {
			out = append(out, fn)
		}
	}
	return out
}
