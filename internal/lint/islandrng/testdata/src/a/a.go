// Fixture for the islandrng analyzer (package pattern overridden to ^a$ by
// the test; helpers stay the default newIslandRNG).
package a

import "math/rand"

// newIslandRNG is the sanctioned helper: constructors inside it are fine.
func newIslandRNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(idx)))
}

// stray mints a generator outside the helper.
func stray(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New in stray` `rand.NewSource in stray`
}

// packageLevel initializers are caught too.
var packageLevel = rand.NewSource(7) // want `rand.NewSource in package scope`

// consume draws from an injected generator — methods are always fine.
func consume(rng *rand.Rand) int {
	return rng.Intn(10)
}

// globals are norandglobal's finding, not this analyzer's.
func globals() int {
	return rand.Int()
}
