// Fixture run with the DEFAULT package pattern: the import path "a2" is not
// internal/ea, so even a stray constructor draws no diagnostic.
package a2

import "math/rand"

func stray(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
