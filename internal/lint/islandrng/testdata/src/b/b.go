// Fixture outside the guarded package pattern: the analyzer stays silent
// even for stray constructors.
package b

import "math/rand"

func anywhere(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
