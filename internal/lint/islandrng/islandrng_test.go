package islandrng_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/islandrng"
)

func TestIslandRNG(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), islandrng.Analyzer,
		analysistest.Options{Settings: map[string]string{"islandrng.package-pattern": "^a$"}}, "a")
}

// TestIslandRNGPackageScope checks the analyzer ignores packages outside the
// configured pattern entirely.
func TestIslandRNGPackageScope(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), islandrng.Analyzer,
		analysistest.Options{Settings: map[string]string{"islandrng.package-pattern": "^a$"}}, "b")
}

// TestIslandRNGDefaultPattern pins the default package pattern to the EA
// package so a rename does not silently unguard it.
func TestIslandRNGDefaultPattern(t *testing.T) {
	// The fixture package path "a" must NOT match the default pattern; the
	// real target does.
	analysistest.Run(t, analysistest.TestData(), islandrng.Analyzer, "a2")
}
