// Package islandrng pins the EA package's RNG construction to the island
// seed-derivation helper.
//
// The island-model determinism argument (DESIGN.md §17) rests on every
// island's random stream being a pure function of (request seed, island
// index): island 0 keeps the raw seed so a single-island run is bit-identical
// to the historical engine, and island i > 0 derives its seed through
// splitmix64. That argument only holds if the helper is the sole place a
// *rand.Rand is born — a stray rand.New(rand.NewSource(...)) elsewhere in
// internal/ea would mint a stream outside the derivation scheme and silently
// fork the lattice. norandglobal already bans the global source; this check
// closes the remaining gap by rejecting any math/rand constructor call in the
// guarded package outside the sanctioned helpers. Test files are exempt:
// tests deliberately build throwaway generators to probe the engine.
package islandrng

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "islandrng",
	Doc:  "islandrng: EA random streams must be constructed via the island seed-derivation helper",
	Run:  run,
}

// Defaults for the .schedlint.conf settings.
const (
	// defaultPackagePattern selects the guarded packages by import path.
	defaultPackagePattern = `(^|/)internal/ea$`
	// defaultHelpers names the sanctioned constructor functions.
	defaultHelpers = "newIslandRNG"
)

// constructors are the math/rand entry points that mint a new generator or
// source. Methods on an existing generator are fine — they only consume an
// already-derived stream.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	pat := pass.Setting("islandrng.package-pattern", defaultPackagePattern)
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, fmt.Errorf("islandrng: bad islandrng.package-pattern %q: %v", pat, err)
	}
	if pass.Pkg == nil || !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	helpers := make(map[string]bool)
	for _, h := range strings.Split(pass.Setting("islandrng.helpers", defaultHelpers), ",") {
		if h = strings.TrimSpace(h); h != "" {
			helpers[h] = true
		}
	}
	for _, f := range pass.Files {
		if tf := pass.Fset.File(f.Pos()); tf != nil && strings.HasSuffix(tf.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			enclosing := ""
			if fd, ok := decl.(*ast.FuncDecl); ok {
				enclosing = fd.Name.Name
			}
			if helpers[enclosing] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.CalleeFunc(call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				pkg := fn.Pkg().Path()
				if pkg != "math/rand" && pkg != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // drawing from an injected generator is the point
				}
				if !constructors[fn.Name()] {
					return true // global-state calls are norandglobal's finding
				}
				where := "package scope"
				if enclosing != "" {
					where = enclosing
				}
				pass.Reportf(call.Pos(),
					"rand.%s in %s: island RNG streams must come from the seed-derivation helper (%s)",
					fn.Name(), where, strings.Join(sortedKeys(helpers), ", "))
				return true
			})
		}
	}
	return nil, nil
}

// sortedKeys renders the helper set deterministically for the message.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
