// Package lockscope enforces two concurrency disciplines that the A/B
// serving layers (evalpool, intern, server) depend on:
//
//  1. No sync primitive is copied by value. A copied sync.Mutex is a fork of
//     the lock state: both copies "work" under the race detector until the
//     moment two goroutines serialize on different forks. The checkout paths
//     in evalpool and intern hand pooled state between goroutines, which is
//     exactly where an accidental by-value bucket or shard copy would slip
//     through. Flagged: parameters, results, and plain copies (x := y,
//     range values) whose type transitively contains a sync primitive.
//
//  2. No lock is held across a blocking channel operation. A mutex held
//     across a send, receive, select, or sync Wait couples the lock's
//     critical section to another goroutine's progress — the classic shape
//     of the server drain deadlock (worker blocked sending on a queue the
//     drainer closed while holding the same lock the drainer wants). The
//     scan is a conservative statement walk: between recv.Lock()/RLock()
//     and the matching Unlock on the same receiver expression, any channel
//     operation in the same function is reported. `go` statements and
//     closure bodies are separate goroutine roots and are scanned
//     independently with an empty lock set.
//
// The one sanctioned violation is internal/server's send-vs-close protocol,
// which deliberately holds an RLock across a non-blocking send so Shutdown
// can take the write lock and know no send is in flight; it carries an
// inline `//schedlint:allow lockscope -- <reason>` recording that argument.
package lockscope

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"emts/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "lockscope: flag sync types copied by value and locks held across channel operations",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSignature(pass, fn)
			checkCopies(pass, fn.Body)
			checkHeld(pass, fn.Body)
			// Closures and go bodies are separate goroutine roots: scan each
			// with a fresh (empty) lock set.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkHeld(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// --- rule 1: sync types copied by value -----------------------------------

func checkSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			flagLockField(pass, f, "receiver")
		}
	}
	for _, f := range fn.Type.Params.List {
		flagLockField(pass, f, "parameter")
	}
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			flagLockField(pass, f, "result")
		}
	}
}

func flagLockField(pass *analysis.Pass, f *ast.Field, kind string) {
	t := pass.TypeOf(f.Type)
	if t == nil || !containsLock(t, nil) {
		return
	}
	pass.Reportf(f.Type.Pos(), "%s passes %s by value, copying the lock it contains; use a pointer", kind, lockName(t))
}

// checkCopies flags plain value copies of lock-containing types: x := y,
// x = y, var x = y, and range value variables. Fresh values (composite
// literals, zero-value declarations, call results) are fine — they have no
// lock state to fork yet.
func checkCopies(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				// `_ = x` discards the value: nothing retains the copy.
				if len(s.Lhs) == len(s.Rhs) && isBlank(s.Lhs[i]) {
					continue
				}
				flagCopyExpr(pass, rhs)
			}
		case *ast.ValueSpec:
			for i, v := range s.Values {
				if len(s.Names) == len(s.Values) && s.Names[i].Name == "_" {
					continue
				}
				flagCopyExpr(pass, v)
			}
		case *ast.RangeStmt:
			if s.Value == nil {
				return true
			}
			t := pass.TypeOf(s.Value)
			if t != nil && containsLock(t, nil) {
				pass.Reportf(s.Value.Pos(), "range copies %s by value, forking its lock state; iterate by index or over pointers", lockName(t))
			}
		}
		return true
	})
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// flagCopyExpr reports the expression when it reads an existing value of a
// lock-containing type (ident, field, index, deref). Literals, calls, and
// conversions produce fresh values and are skipped.
func flagCopyExpr(pass *analysis.Pass, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil || !containsLock(t, nil) {
		return
	}
	pass.Reportf(e.Pos(), "copies %s by value, forking its lock state; share it through a pointer", lockName(t))
}

// lockPrimitives are the by-value-unsafe sync types.
var lockPrimitives = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

// containsLock reports whether t transitively holds a sync primitive by
// value. Pointers, slices, maps, and channels stop the recursion: they share
// rather than copy.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockPrimitives[obj.Name()] {
			return true
		}
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockName renders the offending type for the diagnostic.
func lockName(t types.Type) string {
	return t.String()
}

// --- rule 2: locks held across channel operations -------------------------

// checkHeld walks the statement list tracking which lock receivers are
// held, and reports channel operations encountered while any lock is. The
// held set is passed by copy into nested blocks, so sibling branches do not
// contaminate each other; a lock acquired inside a branch is (conservatively)
// considered released when the branch ends unless the branch reports first.
func checkHeld(pass *analysis.Pass, body *ast.BlockStmt) {
	walkStmts(pass, body.List, make(map[string]bool))
}

func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

func walkStmt(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.GoStmt:
		return // new goroutine root, scanned separately
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — the
		// common idiom — so it does not release here. A deferred Lock
		// would be bizarre; ignore it.
		return
	case *ast.BlockStmt:
		walkStmts(pass, st.List, copyHeld(held))
		return
	case *ast.IfStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, held)
		}
		checkExprOps(pass, st.Cond, held)
		walkStmts(pass, st.Body.List, copyHeld(held))
		if st.Else != nil {
			walkStmt(pass, st.Else, copyHeld(held))
		}
		return
	case *ast.ForStmt:
		if st.Init != nil {
			walkStmt(pass, st.Init, held)
		}
		if st.Cond != nil {
			checkExprOps(pass, st.Cond, held)
		}
		walkStmts(pass, st.Body.List, copyHeld(held))
		return
	case *ast.RangeStmt:
		checkExprOps(pass, st.X, held)
		walkStmts(pass, st.Body.List, copyHeld(held))
		return
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
				return false
			}
			return true
		})
		return
	case *ast.SelectStmt:
		if anyHeld(held) {
			pass.Reportf(st.Pos(), "select while holding %s; a blocked case couples the critical section to another goroutine", heldNames(held))
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
		return
	case *ast.SendStmt:
		if anyHeld(held) {
			pass.Reportf(st.Pos(), "channel send while holding %s; the send can block with the lock held", heldNames(held))
		}
		return
	}

	// Generic statement: look for lock transitions and channel ops in
	// expression position, in source order.
	checkExprOps(pass, s, held)
	applyLockCalls(pass, s, held)
}

// checkExprOps reports channel receives and sync waits inside the node while
// a lock is held, and recurses into nothing that starts a new root.
func checkExprOps(pass *analysis.Pass, n ast.Node, held map[string]bool) {
	if !anyHeld(held) {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				pass.Reportf(e.Pos(), "channel receive while holding %s; the receive can block with the lock held", heldNames(held))
			}
		case *ast.CallExpr:
			if fn := pass.CalleeFunc(e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				pass.Reportf(e.Pos(), "sync %s.Wait while holding %s; waiting couples the critical section to other goroutines", recvString(e), heldNames(held))
			}
		}
		return true
	})
}

// applyLockCalls updates the held set for Lock/RLock/Unlock/RUnlock calls on
// sync receivers found in the statement.
func applyLockCalls(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	ast.Inspect(s, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		key := recvString(call)
		switch fn.Name() {
		case "Lock", "RLock":
			held[key] = true
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return true
	})
}

// recvString renders the receiver expression of a method call as the held-set
// key ("s.mu", "p.shards[i].mu").
func recvString(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "lock"
	}
	return types.ExprString(sel.X)
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
