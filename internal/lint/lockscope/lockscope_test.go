package lockscope_test

import (
	"testing"

	"emts/internal/lint/analysistest"
	"emts/internal/lint/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockscope.Analyzer, "a")
}

func TestLockScopeAllowDirectives(t *testing.T) {
	analysistest.RunWith(t, analysistest.TestData(), lockscope.Analyzer,
		analysistest.Options{Filtered: true}, "allow")
}
