// Fixture for lockscope //schedlint:allow handling (filtered mode): the
// send-vs-close protocol shape from internal/server, sanctioned on one method
// and naked on the other.
package allow

import "sync"

type queue struct {
	mu sync.RWMutex
	ch chan int
}

func (q *queue) sanctioned() {
	q.mu.RLock()
	//schedlint:allow lockscope -- fixture: non-blocking send under RLock so Shutdown's write lock can fence it
	q.ch <- 1
	q.mu.RUnlock()
}

func (q *queue) naked() {
	q.mu.RLock()
	q.ch <- 2 // want `channel send while holding q\.mu`
	q.mu.RUnlock()
}
