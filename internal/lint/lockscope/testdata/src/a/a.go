// Fixture for the lockscope analyzer.
package a

import "sync"

// guarded transitively contains a lock: copying it forks the lock state.
type guarded struct {
	mu sync.Mutex
	n  int
}

// --- rule 1: sync types copied by value ---

func byValParam(g guarded) int { // want `parameter passes a\.guarded by value`
	return g.n
}

func (g guarded) byValRecv() int { // want `receiver passes a\.guarded by value`
	return g.n
}

func byValResult() (g guarded) { // want `result passes a\.guarded by value`
	return
}

func byPtr(g *guarded) int { // pointers share, not copy: fine
	return g.n
}

func copies(items []guarded, ptrs []*guarded) {
	var a guarded
	b := a // want `copies a\.guarded by value`
	_ = b
	var c guarded = a // want `copies a\.guarded by value`
	_ = c
	for _, it := range items { // want `range copies a\.guarded by value`
		_ = it
	}
	for i := range items { // by index: fine
		_ = items[i].n
	}
	for _, p := range ptrs { // pointer elements: fine
		_ = p
	}
	d := &a // taking the address shares: fine
	_ = d
	fresh := guarded{} // fresh value, no lock state to fork yet: fine
	_ = fresh
}

// --- rule 2: locks held across channel operations ---

type server struct {
	mu sync.RWMutex
	ch chan int
}

func (s *server) heldSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func (s *server) heldRecv() {
	s.mu.Lock()
	<-s.ch // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

func (s *server) heldSelect() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	select { // want `select while holding s\.mu`
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) released() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 2 // lock released first: fine
}

func (s *server) heldWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `sync wg\.Wait while holding s\.mu`
	s.mu.Unlock()
}

func (s *server) spawn() {
	s.mu.Lock()
	go func() {
		s.ch <- 3 // separate goroutine root, scanned with an empty lock set: fine
	}()
	s.mu.Unlock()
}
