// Package analysistest runs a schedlint analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring the
// x/tools package of the same name (see internal/lint/analysis for why the
// real one is not vendored).
//
// Fixtures live in testdata/src/<pkg>/*.go and may import the standard
// library only; their dependencies are type-checked from compiler export data
// materialized on demand with `go list -export`.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"emts/internal/lint/analysis"
	"emts/internal/lint/driver"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies the analyzer to each fixture package under dir/src and reports
// every mismatch between actual diagnostics and want comments as a test
// error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

func runPackage(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", importPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", importPath, dir)
	}

	fset := token.NewFileSet()
	imp := driver.ExportDataImporter(fset, stdExportLookup(t, dir, files))
	pkg, err := driver.CheckFiles(fset, imp, importPath, dir, files)
	if err != nil {
		t.Fatalf("%s: %v", importPath, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			k := key{filepath.Base(pos.Filename), pos.Line}
			got[k] = append(got[k], d.Message)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed: %v", importPath, err)
	}

	want := make(map[key][]*regexp.Regexp)
	for i, f := range pkg.Syntax {
		base := filepath.Base(pkg.Files[i])
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, perr := parseWant(c.Text)
				if perr != nil {
					t.Errorf("%s:%d: %v", base, fset.Position(c.Pos()).Line, perr)
					continue
				}
				if len(patterns) > 0 {
					k := key{base, fset.Position(c.Pos()).Line}
					want[k] = append(want[k], patterns...)
				}
			}
		}
	}

	// Match wants against diagnostics per line.
	var keys []key
	seen := make(map[key]bool)
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range want {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		diags := append([]string(nil), got[k]...)
		for _, re := range want[k] {
			idx := -1
			for i, d := range diags {
				if re.MatchString(d) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s/%s:%d: no diagnostic matching %q", importPath, k.file, k.line, re)
				continue
			}
			diags = append(diags[:idx], diags[idx+1:]...)
		}
		for _, d := range diags {
			t.Errorf("%s/%s:%d: unexpected diagnostic: %s", importPath, k.file, k.line, d)
		}
	}
}

// parseWant extracts the quoted regexps of a `// want "..." "..."` comment.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("want: expected quoted regexp, got %q", rest)
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("want: %v in %q", err, rest)
		}
		s, _ := strconv.Unquote(q)
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("want: bad regexp %q: %v", s, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out, nil
}

// stdExportLookup returns a resolver for the fixture files' (transitive,
// standard-library) imports, materializing export data via `go list -export`.
func stdExportLookup(t *testing.T, dir string, files []string) func(string) (string, bool) {
	t.Helper()
	direct := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			direct[p] = true
		}
	}
	exports := make(map[string]string)
	if len(direct) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
		var paths []string
		for p := range direct {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args = append(args, paths...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list -export %v: %v\n%s", paths, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}
}
