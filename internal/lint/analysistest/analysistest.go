// Package analysistest runs a schedlint analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring the
// x/tools package of the same name (see internal/lint/analysis for why the
// real one is not vendored).
//
// Fixtures live in testdata/src/<pkg>/*.go and may import the standard
// library only; their dependencies are type-checked from compiler export data
// materialized on demand with `go list -export`.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"emts/internal/lint/analysis"
	"emts/internal/lint/config"
	"emts/internal/lint/driver"
	"emts/internal/lint/gcdiag"
)

// TestData returns the absolute path of the caller package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Options adjusts a fixture run beyond the defaults.
type Options struct {
	// Settings populates Pass.Settings, standing in for the `set` directives
	// of .schedlint.conf.
	Settings map[string]string
	// Filtered applies the inline `//schedlint:allow` directives the way the
	// real driver does — suppressed diagnostics disappear, and malformed or
	// unknown-analyzer directives surface as diagnostics of the pseudo-
	// analyzer "schedlint" (matchable by want comments).
	Filtered bool
	// Known lists the analyzer names inline directives may reference when
	// Filtered is set; defaults to just the analyzer under test.
	Known []string
}

// Run applies the analyzer to each fixture package under dir/src and reports
// every mismatch between actual diagnostics and want comments as a test
// error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	RunWith(t, dir, a, Options{}, pkgs...)
}

// RunWith is Run with explicit Options.
func RunWith(t *testing.T, dir string, a *analysis.Analyzer, opts Options, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a, opts)
	}
}

func runPackage(t *testing.T, dir, importPath string, a *analysis.Analyzer, opts Options) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", importPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", importPath, dir)
	}

	fset := token.NewFileSet()
	imp := driver.ExportDataImporter(fset, stdExportLookup(t, dir, files))
	pkg, err := driver.CheckFiles(fset, imp, importPath, dir, files)
	if err != nil {
		t.Fatalf("%s: %v", importPath, err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	record := func(analyzer string, pos token.Position, msg string) {
		k := key{filepath.Base(pos.Filename), pos.Line}
		got[k] = append(got[k], msg)
	}

	var sup map[string]*config.Suppressions
	if opts.Filtered {
		known := opts.Known
		if known == nil {
			known = []string{a.Name}
		}
		knownSet := map[string]bool{"schedlint": true}
		for _, n := range known {
			knownSet[n] = true
		}
		sup = make(map[string]*config.Suppressions, len(pkg.Syntax))
		for i, f := range pkg.Syntax {
			s := config.CollectSuppressions(fset, f)
			sup[filepath.Base(pkg.Files[i])] = s
			for _, p := range s.Malformed() {
				record("schedlint", fset.Position(p), "malformed //schedlint:allow directive: want `//schedlint:allow <analyzer>[,...] -- <reason>`")
			}
			for _, d := range s.Directives() {
				for _, n := range d.Names {
					if !knownSet[n] {
						record("schedlint", fset.Position(d.Pos), fmt.Sprintf("//schedlint:allow names unknown analyzer %q", n))
					}
				}
			}
		}
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Dir:       dir,
		Settings:  opts.Settings,
		Report: func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if opts.Filtered && sup[filepath.Base(pos.Filename)].Allows(a.Name, pos.Line) {
				return
			}
			record(a.Name, pos, d.Message)
		},
	}
	if a.NeedsGCDiags {
		// go build rejects _test.go files in file-list mode; fixtures for
		// compiler-facts analyzers keep their code in non-test files.
		var buildable []string
		for _, f := range files {
			if !strings.HasSuffix(f, "_test.go") {
				buildable = append(buildable, f)
			}
		}
		diags, derr := gcdiag.ForFiles(dir, buildable)
		if derr != nil {
			t.Fatalf("%s: compiler diagnostics: %v", importPath, derr)
		}
		pass.GCDiags = diags
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed: %v", importPath, err)
	}

	want := make(map[key][]*regexp.Regexp)
	for i, f := range pkg.Syntax {
		base := filepath.Base(pkg.Files[i])
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, perr := parseWant(c.Text)
				if perr != nil {
					t.Errorf("%s:%d: %v", base, fset.Position(c.Pos()).Line, perr)
					continue
				}
				if len(patterns) > 0 {
					k := key{base, fset.Position(c.Pos()).Line}
					want[k] = append(want[k], patterns...)
				}
			}
		}
	}

	// Match wants against diagnostics per line.
	var keys []key
	seen := make(map[key]bool)
	for k := range got {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range want {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		diags := append([]string(nil), got[k]...)
		for _, re := range want[k] {
			idx := -1
			for i, d := range diags {
				if re.MatchString(d) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s/%s:%d: no diagnostic matching %q", importPath, k.file, k.line, re)
				continue
			}
			diags = append(diags[:idx], diags[idx+1:]...)
		}
		for _, d := range diags {
			t.Errorf("%s/%s:%d: unexpected diagnostic: %s", importPath, k.file, k.line, d)
		}
	}
}

// parseWant extracts the quoted regexps of a `// want "..." "..."` comment.
// The marker may also trail other comment text (`//schedlint:allow ... // want
// "..."`): directive-validation diagnostics land on the directive's own line,
// and a line holds at most one line comment, so the want must share it.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		if i := strings.Index(text, "// want "); i >= 0 {
			rest, ok = text[i+len("// want "):], true
		}
	}
	if !ok {
		return nil, nil
	}
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("want: expected quoted regexp, got %q", rest)
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("want: %v in %q", err, rest)
		}
		s, _ := strconv.Unquote(q)
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("want: bad regexp %q: %v", s, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out, nil
}

// stdExportLookup returns a resolver for the fixture files' (transitive,
// standard-library) imports, materializing export data via `go list -export`.
func stdExportLookup(t *testing.T, dir string, files []string) func(string) (string, bool) {
	t.Helper()
	direct := make(map[string]bool)
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			direct[p] = true
		}
	}
	exports := make(map[string]string)
	if len(direct) > 0 {
		args := []string{"list", "-deps", "-export", "-json=ImportPath,Export"}
		var paths []string
		for p := range direct {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args = append(args, paths...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list -export %v: %v\n%s", paths, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}
}
