package onestep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"emts/internal/dag"
	"emts/internal/listsched"
	"emts/internal/model"
	"emts/internal/platform"
	"emts/internal/schedule"
)

var testCluster = platform.Cluster{Name: "test", Procs: 8, SpeedGFlops: 1}

func buildGraph(t *testing.T, flops []float64, edges [][2]int) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder("g")
	for _, f := range flops {
		b.AddTask(dag.Task{Flops: f, Alpha: 0.05})
	}
	for _, e := range edges {
		b.AddEdge(dag.TaskID(e[0]), dag.TaskID(e[1]))
	}
	return b.MustBuild()
}

func TestSingleTaskGetsAllUsefulProcs(t *testing.T) {
	b := dag.NewBuilder("one")
	b.AddTask(dag.Task{Flops: 8e9, Alpha: 0}) // perfectly parallel
	g := b.MustBuild()
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := GreedyEFT{}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
	// alpha = 0: the earliest finish uses all 8 processors, 1 second.
	if len(s.Entries[0].Procs) != 8 || s.Makespan() != 1 {
		t.Fatalf("procs %d, makespan %g", len(s.Entries[0].Procs), s.Makespan())
	}
}

func TestMaxAllocCap(t *testing.T) {
	b := dag.NewBuilder("one")
	b.AddTask(dag.Task{Flops: 8e9, Alpha: 0})
	g := b.MustBuild()
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := GreedyEFT{MaxAlloc: 3}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries[0].Procs) != 3 {
		t.Fatalf("cap ignored: %d procs", len(s.Entries[0].Procs))
	}
}

func TestEfficiencyGuardLimitsAllocation(t *testing.T) {
	// A poorly scalable task: with the guard on, fewer processors are used.
	b := dag.NewBuilder("serial")
	b.AddTask(dag.Task{Flops: 8e9, Alpha: 0.5})
	g := b.MustBuild()
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	pure, err := GreedyEFT{}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := GreedyEFT{Efficiency: 0.5}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(guarded.Entries[0].Procs) >= len(pure.Entries[0].Procs) {
		t.Fatalf("guard did not reduce allocation: %d vs %d",
			len(guarded.Entries[0].Procs), len(pure.Entries[0].Procs))
	}
}

func TestIndependentTasksShareCluster(t *testing.T) {
	// Two identical perfectly-parallel tasks: the one-step scheduler gives
	// the first everything, then the second runs after — or splits. Either
	// way the schedule validates and no processor is oversubscribed.
	g := buildGraph(t, []float64{8e9, 8e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := GreedyEFT{}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, tab); err != nil {
		t.Fatal(err)
	}
}

func TestChainRespectPrecedence(t *testing.T) {
	g := buildGraph(t, []float64{4e9, 4e9}, [][2]int{{0, 1}})
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	s, err := GreedyEFT{}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries[1].Start < s.Entries[0].End {
		t.Fatal("precedence violated")
	}
}

func TestValidationErrors(t *testing.T) {
	g := buildGraph(t, []float64{1e9}, nil)
	small := buildGraph(t, []float64{1e9, 1e9}, nil)
	tab := model.MustTable(small, model.Amdahl{}, testCluster)
	if _, err := (GreedyEFT{}).Schedule(g, tab); err == nil {
		t.Fatal("mismatched table accepted")
	}
	empty := dag.NewBuilder("e").MustBuild()
	emptyTab := model.MustTable(empty, model.Amdahl{}, testCluster)
	if _, err := (GreedyEFT{}).Schedule(empty, emptyTab); err == nil {
		t.Fatal("empty graph accepted")
	}
	gtab := model.MustTable(g, model.Amdahl{}, testCluster)
	if _, err := (GreedyEFT{Efficiency: 2}).Schedule(g, gtab); err == nil {
		t.Fatal("bad efficiency accepted")
	}
}

func TestPropertyValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := dag.NewBuilder("prop")
		n := 2 + rng.Intn(25)
		for i := 0; i < n; i++ {
			b.AddTask(dag.Task{Flops: 1e8 + rng.Float64()*1e10, Alpha: rng.Float64() / 3})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					b.AddEdge(dag.TaskID(i), dag.TaskID(j))
				}
			}
		}
		g := b.MustBuild()
		cluster := platform.Cluster{Name: "p", Procs: 2 + rng.Intn(16), SpeedGFlops: 1}
		var m model.Model = model.Amdahl{}
		if rng.Intn(2) == 0 {
			m = model.Synthetic{}
		}
		tab := model.MustTable(g, m, cluster)
		s, err := GreedyEFT{Efficiency: rng.Float64() / 2}.Schedule(g, tab)
		if err != nil {
			return false
		}
		return s.Validate(g, tab) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEFTBeatsSequentialBaseline(t *testing.T) {
	// On a fork of scalable tasks, one-step EFT must beat everything-on-one-
	// processor-each scheduling mapped by the two-step mapper.
	g := buildGraph(t, []float64{10e9, 10e9, 10e9, 10e9}, nil)
	tab := model.MustTable(g, model.Amdahl{}, testCluster)
	eft, err := GreedyEFT{}.Schedule(g, tab)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := listsched.Makespan(g, tab, schedule.Ones(4))
	if err != nil {
		t.Fatal(err)
	}
	if eft.Makespan() > seq {
		t.Fatalf("EFT %g worse than sequential allocations %g", eft.Makespan(), seq)
	}
}
