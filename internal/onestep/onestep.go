// Package onestep implements a one-step scheduler for moldable task graphs,
// the second algorithm class of Section II-B (e.g. LoC-MPS, Boudet et al.):
// allocation and mapping are decided together, task by task. It serves as an
// additional comparator for EMTS beyond the two-step CPA family.
//
// The implemented algorithm, GreedyEFT, is the natural moldable extension of
// earliest-finish-time list scheduling (in the spirit of M-HEFT): ready tasks
// are prioritized by bottom level; for the selected task every processor
// count p is evaluated against the current processor availability, and the
// (p, processor set) minimizing the task's finish time is committed. This is
// exactly the "final decision of placement ... for a task in each iteration"
// the paper describes, with the known trade-off: better local packing, higher
// scheduling cost.
package onestep

import (
	"container/heap"
	"fmt"
	"sort"

	"emts/internal/dag"
	"emts/internal/model"
	"emts/internal/schedule"
)

// GreedyEFT configures the one-step scheduler.
type GreedyEFT struct {
	// MaxAlloc caps the processor count considered per task (0 = P). A cap
	// below P models the "maximum look-ahead" bound discussed in Section
	// II-C and keeps single tasks from monopolizing the cluster.
	MaxAlloc int
	// Efficiency, in [0, 1], prunes allocations whose marginal speedup is
	// poor: growing from p to p+1 must reduce the finish time by at least
	// Efficiency/(p+1) of the current value, a standard guard against
	// wasting processors on barely-parallel tasks. 0 disables the guard and
	// picks the pure earliest-finish allocation.
	Efficiency float64
}

// Name identifies the scheduler in reports.
func (GreedyEFT) Name() string { return "eft" }

// Schedule builds a complete schedule for g using the execution times of
// tab. The result passes schedule.Validate.
func (o GreedyEFT) Schedule(g *dag.Graph, tab *model.Table) (*schedule.Schedule, error) {
	if tab.NumTasks() != g.NumTasks() {
		return nil, fmt.Errorf("onestep: table covers %d tasks, graph has %d", tab.NumTasks(), g.NumTasks())
	}
	if g.NumTasks() == 0 {
		return nil, fmt.Errorf("onestep: empty graph")
	}
	if o.Efficiency < 0 || o.Efficiency > 1 {
		return nil, fmt.Errorf("onestep: efficiency %g outside [0,1]", o.Efficiency)
	}
	procs := tab.Procs()
	maxAlloc := o.MaxAlloc
	if maxAlloc <= 0 || maxAlloc > procs {
		maxAlloc = procs
	}

	// Priorities: bottom levels under single-processor times, the common
	// one-step choice (the final allocation is unknown up front).
	ones := schedule.Ones(g.NumTasks())
	bl := g.BottomLevels(func(id dag.TaskID) float64 { return tab.Time(id, ones[id]) })

	n := g.NumTasks()
	indeg := make([]int, n)
	readyTime := make([]float64, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Predecessors(dag.TaskID(i)))
	}
	ready := &taskQueue{bl: bl}
	heap.Init(ready)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.Push(ready, dag.TaskID(i))
		}
	}

	avail := make([]float64, procs)
	order := make([]int, procs)
	sched := &schedule.Schedule{Graph: g.Name(), Procs: procs, Entries: make([]schedule.Entry, n)}
	placed := 0

	for ready.Len() > 0 {
		v := heap.Pop(ready).(dag.TaskID)

		// Sort processors by (availability, index) once per task; the p
		// earliest-available processors are then order[:p] for every p.
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return avail[order[a]] < avail[order[b]] })

		// Evaluate every processor count and keep the earliest finish; ties
		// break toward fewer processors (cheaper in resources).
		bestP := 1
		bestStart := maxf(readyTime[v], avail[order[0]])
		bestFinish := bestStart + tab.Time(v, 1)
		for p := 2; p <= maxAlloc; p++ {
			start := maxf(readyTime[v], avail[order[p-1]])
			finish := start + tab.Time(v, p)
			improvement := bestFinish - finish
			threshold := 0.0
			if o.Efficiency > 0 {
				threshold = o.Efficiency / float64(p) * bestFinish
			}
			if improvement > threshold {
				bestP, bestStart, bestFinish = p, start, finish
			}
		}

		chosen := make([]int, bestP)
		copy(chosen, order[:bestP])
		sort.Ints(chosen)
		sched.Entries[v] = schedule.Entry{Task: v, Start: bestStart, End: bestFinish, Procs: chosen}
		placed++
		for _, p := range chosen {
			avail[p] = bestFinish
		}
		for _, w := range g.Successors(v) {
			if bestFinish > readyTime[w] {
				readyTime[w] = bestFinish
			}
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(ready, w)
			}
		}
	}
	if placed != n {
		return nil, fmt.Errorf("onestep: scheduled %d of %d tasks", placed, n)
	}
	return sched, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// taskQueue is a max-heap of ready tasks by bottom level, ID tie-break.
type taskQueue struct {
	bl    []float64
	items []dag.TaskID
}

func (q *taskQueue) Len() int { return len(q.items) }

func (q *taskQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	//schedlint:allow floateq -- exact tie-break: (bottom level desc, ID asc) keeps the priority queue a strict total order
	if q.bl[a] != q.bl[b] {
		return q.bl[a] > q.bl[b]
	}
	return a < b
}

func (q *taskQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *taskQueue) Push(x any) { q.items = append(q.items, x.(dag.TaskID)) }

func (q *taskQueue) Pop() any {
	last := len(q.items) - 1
	v := q.items[last]
	q.items = q.items[:last]
	return v
}
