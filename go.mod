module emts

go 1.22
