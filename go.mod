module emts

go 1.24
