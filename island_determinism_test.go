// End-to-end island-model determinism over the full core stack (PR 10):
// real task graphs, the Synthetic model table, the list-scheduling mapper
// with delta/batch/cache layers — everything the serving tier runs. The
// ea-level lattice (internal/ea/island_test.go) pins the coordinator in
// isolation; this test pins the composition, including the A/B switch
// core.Params.DisableWorkStealing and the effective Result.Islands echo.
package emts_test

import (
	"reflect"
	"testing"

	"emts/internal/core"
	"emts/internal/model"
	"emts/internal/platform"
)

// TestIslandCoreLatticeDeterminism walks islands × topology ×
// DisableWorkStealing × worker budget over the standard determinism graphs:
// every combination with the same (islands, topology, interval) must be
// byte-identical — work stealing and worker counts change timing, never
// bytes — and a multi-island run must report its effective island count.
func TestIslandCoreLatticeDeterminism(t *testing.T) {
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		single, err := core.Run(g, tab, core.EMTS5(42))
		if err != nil {
			t.Fatal(err)
		}
		if single.Islands != 1 {
			t.Fatalf("%s: single-population run reports Islands = %d, want 1", g.Name(), single.Islands)
		}
		for _, islands := range []int{2, 4} {
			for _, topo := range []string{"", "full"} {
				var want *core.Result
				for _, steal := range []bool{false, true} {
					for _, workers := range []int{0, 1, 4} {
						p := core.EMTS5(42)
						p.Islands = islands
						p.MigrationInterval = 2
						p.Topology = topo
						p.DisableWorkStealing = steal
						p.Workers = workers
						got, err := core.Run(g, tab, p)
						if err != nil {
							t.Fatal(err)
						}
						if got.Islands != islands {
							t.Fatalf("%s islands=%d: Result.Islands = %d", g.Name(), islands, got.Islands)
						}
						if err := got.Schedule.Validate(g, tab); err != nil {
							t.Fatalf("%s islands=%d: invalid schedule: %v", g.Name(), islands, err)
						}
						if want == nil {
							want = got
							continue
						}
						if got.Makespan != want.Makespan ||
							!reflect.DeepEqual(got.Alloc, want.Alloc) ||
							!reflect.DeepEqual(got.History, want.History) ||
							got.Evaluations != want.Evaluations ||
							got.Rejections != want.Rejections ||
							got.CacheHits != want.CacheHits ||
							got.PrefilterRejections != want.PrefilterRejections {
							t.Errorf("%s islands=%d topo=%q steal=%v workers=%d: diverged from the first combination (makespan %g vs %g, evals %d vs %d)",
								g.Name(), islands, topo, !p.DisableWorkStealing, workers,
								got.Makespan, want.Makespan, got.Evaluations, want.Evaluations)
						}
					}
				}
				// Plus-selection and seeding are shared, so the island run
				// can never do worse than its own seeds; and the aggregate
				// history must stay monotone like the classic run's.
				for i := 1; i < len(want.History); i++ {
					if want.History[i] > want.History[i-1] {
						t.Fatalf("%s islands=%d: history worsened at generation %d", g.Name(), islands, i)
					}
				}
			}
		}
	}
}
