// Switch-lattice determinism meta-test for the structure-of-arrays batch
// evaluation path (PR 6). Every perf layer carries a Disable switch and must
// be bit-identical to every other combination; this test walks the full
// batch×delta×prefilter×cache lattice so no pairwise interaction can drift.
//
// The test names start with "TestBatch" on purpose: the CI race step runs
// `go test -race -run 'TestBatch'` at GOMAXPROCS 1 and 8 to exercise the
// chunked batch dispatch under the race detector in both the inline and the
// fan-out regime.
package emts_test

import (
	"reflect"
	"testing"

	"emts/internal/core"
	"emts/internal/ea"
	"emts/internal/model"
	"emts/internal/platform"
)

func TestBatchSwitchLatticeDeterminism(t *testing.T) {
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		for _, useRejection := range []bool{false, true} {
			base := core.EMTS5(42)
			base.UseRejection = useRejection
			want, err := core.Run(g, tab, base) // every layer on: batch, delta, prefilter, cache
			if err != nil {
				t.Fatal(err)
			}
			for mask := 0; mask < 16; mask++ {
				p := core.EMTS5(42)
				p.UseRejection = useRejection
				p.DisableBatch = mask&1 != 0
				p.DisableDelta = mask&2 != 0
				p.DisablePrefilter = mask&4 != 0
				p.DisableCache = mask&8 != 0
				got, err := core.Run(g, tab, p)
				if err != nil {
					t.Fatal(err)
				}
				ctx := g.Name()
				if got.Makespan != want.Makespan ||
					!reflect.DeepEqual(got.Alloc, want.Alloc) ||
					!reflect.DeepEqual(got.History, want.History) ||
					got.Evaluations != want.Evaluations ||
					got.Rejections != want.Rejections {
					t.Errorf("%s rejection=%v batch=%v delta=%v prefilter=%v cache=%v: diverged from all-on baseline (makespan %g vs %g, evals %d vs %d, rejects %d vs %d)",
						ctx, useRejection, !p.DisableBatch, !p.DisableDelta, !p.DisablePrefilter, !p.DisableCache,
						got.Makespan, want.Makespan, got.Evaluations, want.Evaluations, got.Rejections, want.Rejections)
				}
				// CacheHits and PrefilterRejections are observability counters
				// of their own layer: exact within the same switch setting,
				// necessarily zero when the layer is off.
				if p.DisableCache {
					if got.CacheHits != 0 {
						t.Errorf("%s: CacheHits = %d with the cache disabled", ctx, got.CacheHits)
					}
				} else if got.CacheHits != want.CacheHits {
					t.Errorf("%s rejection=%v batch=%v: CacheHits %d, want %d",
						ctx, useRejection, !p.DisableBatch, got.CacheHits, want.CacheHits)
				}
				if p.DisablePrefilter || !useRejection {
					if got.PrefilterRejections != 0 {
						t.Errorf("%s: PrefilterRejections = %d with the prefilter off or no bound", ctx, got.PrefilterRejections)
					}
				} else if got.PrefilterRejections != want.PrefilterRejections {
					t.Errorf("%s rejection=%v batch=%v delta=%v cache=%v: PrefilterRejections %d, want %d",
						ctx, useRejection, !p.DisableBatch, !p.DisableDelta, !p.DisableCache,
						got.PrefilterRejections, want.PrefilterRejections)
				}
			}
		}
	}
}

// TestBatchObserverTransparency pins the async job subsystem's zero-cost
// contract (PR 9): attaching an OnGeneration observer — the hook the SSE
// progress stream feeds from — must be invisible to the optimization. The
// observed run is bit-identical to the unobserved one, the callback fires
// exactly once per completed generation, and the streamed snapshots agree
// with the final result (incumbent fitness and cumulative counters). Runs
// under the TestBatch race step at GOMAXPROCS 1 and 8, so the once-per-
// generation callback point is exercised in both dispatch regimes.
func TestBatchObserverTransparency(t *testing.T) {
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		base := core.EMTS5(42)
		base.UseRejection = true
		want, err := core.Run(g, tab, base)
		if err != nil {
			t.Fatal(err)
		}

		var stats []ea.GenStats
		p := core.EMTS5(42)
		p.UseRejection = true
		p.OnGeneration = func(gs ea.GenStats) { stats = append(stats, gs) }
		got, err := core.Run(g, tab, p)
		if err != nil {
			t.Fatal(err)
		}

		ctx := g.Name()
		if got.Makespan != want.Makespan ||
			!reflect.DeepEqual(got.Alloc, want.Alloc) ||
			!reflect.DeepEqual(got.History, want.History) ||
			got.Evaluations != want.Evaluations ||
			got.Rejections != want.Rejections ||
			got.CacheHits != want.CacheHits ||
			got.PrefilterRejections != want.PrefilterRejections {
			t.Errorf("%s: observed run diverged from unobserved baseline (makespan %g vs %g)",
				ctx, got.Makespan, want.Makespan)
		}
		if len(stats) != got.Generations {
			t.Fatalf("%s: %d OnGeneration callbacks for %d generations", ctx, len(stats), got.Generations)
		}
		for i, gs := range stats {
			if gs.Generation != i {
				t.Fatalf("%s: callback %d reported generation %d", ctx, i, gs.Generation)
			}
		}
		last := stats[len(stats)-1]
		if last.BestEver != got.Makespan {
			t.Errorf("%s: last streamed BestEver %g != final makespan %g — the anytime/SSE contract",
				ctx, last.BestEver, got.Makespan)
		}
		if last.Evaluations != got.Evaluations ||
			last.CacheHits != got.CacheHits ||
			last.PrefilterRejections != got.PrefilterRejections {
			t.Errorf("%s: last snapshot counters (evals %d, cache %d, prefilter %d) != final result (%d, %d, %d)",
				ctx, last.Evaluations, last.CacheHits, last.PrefilterRejections,
				got.Evaluations, got.CacheHits, got.PrefilterRejections)
		}
		// BestEver is non-increasing by plus-selection, mirroring History.
		for i := 1; i < len(stats); i++ {
			if stats[i].BestEver > stats[i-1].BestEver {
				t.Fatalf("%s: BestEver increased at generation %d (%g -> %g)",
					ctx, i, stats[i-1].BestEver, stats[i].BestEver)
			}
		}
	}
}

// TestBatchWorkerCountDeterminism pins the chunked dispatch against the
// worker-count lever: chunk boundaries move with the worker count, so this
// is the axis most likely to expose an order dependence in the batch path.
func TestBatchWorkerCountDeterminism(t *testing.T) {
	for _, g := range determinismGraphs(t) {
		tab, err := model.NewTable(g, model.Synthetic{}, platform.Grelon())
		if err != nil {
			t.Fatal(err)
		}
		base := core.EMTS5(42)
		base.UseRejection = true
		want, err := core.Run(g, tab, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			p := core.EMTS5(42)
			p.UseRejection = true
			p.Workers = workers
			got, err := core.Run(g, tab, p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan ||
				!reflect.DeepEqual(got.Alloc, want.Alloc) ||
				!reflect.DeepEqual(got.History, want.History) ||
				got.Evaluations != want.Evaluations ||
				got.Rejections != want.Rejections ||
				got.CacheHits != want.CacheHits ||
				got.PrefilterRejections != want.PrefilterRejections {
				t.Errorf("%s workers=%d: diverged from default-workers baseline (makespan %g vs %g)",
					g.Name(), workers, got.Makespan, want.Makespan)
			}
		}
	}
}
