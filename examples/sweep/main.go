// Sweep: study how the EMTS advantage grows with cluster size — the paper's
// observation that "EMTS performs comparatively better for larger platforms"
// (Section V-A) — by sweeping the processor count from 8 to 128 on a fixed
// batch of irregular 100-task PTGs under the non-monotonic model.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"emts"
)

func main() {
	const instances = 5
	var graphs []*emts.Graph
	for i := 0; i < instances; i++ {
		g, err := emts.GenerateRandom(emts.RandomGraphConfig{
			N: 100, Width: 0.5, Regularity: 0.2, Density: 0.5, Jump: 2,
		}, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	fmt.Printf("mean makespan over %d irregular 100-task PTGs (Model 2)\n\n", instances)
	fmt.Printf("%6s %12s %12s %12s %10s\n", "procs", "MCPA [s]", "EMTS5 [s]", "EMTS10 [s]", "MCPA/E5")
	for _, procs := range []int{8, 16, 32, 64, 128} {
		cluster, err := emts.NewCluster(fmt.Sprintf("sweep-%d", procs), procs, 3.1)
		if err != nil {
			log.Fatal(err)
		}
		var mcpaSum, e5Sum, e10Sum float64
		for _, g := range graphs {
			tab, err := emts.NewTimeTable(g, emts.Synthetic(), cluster)
			if err != nil {
				log.Fatal(err)
			}
			a, err := emts.MCPA().Allocate(g, tab)
			if err != nil {
				log.Fatal(err)
			}
			ms, err := emts.Makespan(g, tab, a)
			if err != nil {
				log.Fatal(err)
			}
			mcpaSum += ms

			r5, err := emts.OptimizeTable(g, tab, emts.EMTS5(1))
			if err != nil {
				log.Fatal(err)
			}
			e5Sum += r5.Makespan

			r10, err := emts.OptimizeTable(g, tab, emts.EMTS10(1))
			if err != nil {
				log.Fatal(err)
			}
			e10Sum += r10.Makespan
		}
		n := float64(instances)
		fmt.Printf("%6d %12.2f %12.2f %12.2f %10.3f\n",
			procs, mcpaSum/n, e5Sum/n, e10Sum/n, mcpaSum/e5Sum)
	}
	fmt.Println("\nMCPA/E5 > 1 means EMTS5 wins; the ratio should grow with the cluster size.")
}
