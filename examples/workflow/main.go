// Workflow: build a scientific-workflow PTG by hand with the public builder
// API — the kind of moldable-task application the paper's introduction
// motivates — and compare every implemented scheduling algorithm on it.
//
// The workflow is a classic fan-out/fan-in pipeline: ingest → per-region
// preprocessing → per-region simulation → cross-region coupling → analysis →
// report, where the simulations are heavy, highly parallel moldable tasks
// and the coupling steps are poorly scalable.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"emts"
)

func main() {
	g := buildWorkflow(6)
	fmt.Printf("workflow %q: %d tasks, %d edges, depth %d, max width %d\n\n",
		g.Name(), g.NumTasks(), g.NumEdges(), g.Depth(), g.MaxWidth())

	for _, cluster := range []emts.Cluster{emts.Chti(), emts.Grelon()} {
		fmt.Printf("=== %s ===\n", cluster)
		reports, err := emts.Compare(g, cluster, "synthetic",
			[]string{"one", "cpa", "hcpa", "mcpa", "mcpa2", "bicpa", "delta-cp", "eft", "emts5", "emts10"}, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %10s\n", "algorithm", "makespan [s]", "vs best", "util")
		best := reports[0].Makespan
		for _, r := range reports {
			fmt.Printf("%-10s %12.2f %11.1f%% %9.1f%%\n",
				r.Algorithm, r.Makespan, 100*(r.Makespan/best-1), 100*r.Utilization())
		}
		fmt.Println()
	}
}

// buildWorkflow assembles the PTG for `regions` parallel simulation branches.
func buildWorkflow(regions int) *emts.Graph {
	b := emts.NewGraph("climate-coupling")
	ingest := b.AddTask(emts.Task{Name: "ingest", Flops: 20e9, Alpha: 0.30})
	analysis := b.AddTask(emts.Task{Name: "analysis", Flops: 120e9, Alpha: 0.10})
	report := b.AddTask(emts.Task{Name: "report", Flops: 4e9, Alpha: 0.60})

	var sims []emts.TaskID
	for r := 0; r < regions; r++ {
		pre := b.AddTask(emts.Task{
			Name:  fmt.Sprintf("preprocess-%d", r),
			Flops: 30e9 + 5e9*float64(r),
			Alpha: 0.15,
		})
		sim := b.AddTask(emts.Task{
			Name:  fmt.Sprintf("simulate-%d", r),
			Flops: 400e9 + 60e9*float64(r%3),
			Alpha: 0.02, // highly scalable solver
		})
		b.AddEdge(ingest, pre)
		b.AddEdge(pre, sim)
		sims = append(sims, sim)
	}
	// Pairwise coupling between neighbouring regions: poorly scalable.
	for r := 0; r+1 < regions; r++ {
		couple := b.AddTask(emts.Task{
			Name:  fmt.Sprintf("couple-%d-%d", r, r+1),
			Flops: 50e9,
			Alpha: 0.45,
		})
		b.AddEdge(sims[r], couple)
		b.AddEdge(sims[r+1], couple)
		b.AddEdge(couple, analysis)
	}
	b.AddEdge(analysis, report)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}
