// Quickstart: generate an FFT parallel task graph, schedule it on the Grelon
// cluster with EMTS under the non-monotonic execution-time model, and compare
// against the heuristics EMTS started from.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"emts"
)

func main() {
	// A 39-task FFT PTG (8 input points) with randomized task complexities,
	// exactly as generated for the paper's evaluation (Section IV-C).
	g, err := emts.GenerateFFT(8, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PTG %s: %d tasks, %d edges, depth %d\n",
		g.Name(), g.NumTasks(), g.NumEdges(), g.Depth())

	// Optimize the processor allocations with the (5+25)-EA for 5
	// generations (EMTS5), starting from the MCPA, HCPA, and Δ-CP solutions.
	res, err := emts.Optimize(g, emts.Grelon(), emts.Synthetic(), emts.EMTS5(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nstarting heuristics:")
	for _, s := range res.Seeds {
		if s.Err != nil {
			fmt.Printf("  %-10s failed: %v\n", s.Name, s.Err)
			continue
		}
		fmt.Printf("  %-10s makespan %8.2f s\n", s.Name, s.Makespan)
	}
	fmt.Printf("\nEMTS5 makespan: %8.2f s (%.1f%% better than the best seed)\n",
		res.Makespan, 100*(1-res.Makespan/res.BestSeedMakespan()))

	fmt.Println("\nconvergence (best makespan after each generation):")
	for u, h := range res.History {
		fmt.Printf("  gen %d: %8.2f s\n", u, h)
	}

	fmt.Println()
	fmt.Print(res.Schedule.ASCII(100))
}
