// Batchqueue: the paper's motivating deployment scenario (Section II-A) end
// to end. A stream of scientific-workflow jobs arrives at the Grelon cluster;
// the batch scheduler grants each a partition, and a PTG scheduler computes
// the job's internal schedule. We compare how the choice of PTG scheduler
// (MCPA vs EMTS5) and partition policy changes what the users experience:
// waiting time and turnaround.
//
// Run with: go run ./examples/batchqueue
package main

import (
	"fmt"
	"log"

	"emts"
)

func main() {
	// Eight jobs of mixed shape arriving over half an hour.
	var jobs []emts.BatchJob
	for i := 0; i < 8; i++ {
		var (
			g   *emts.Graph
			err error
		)
		switch i % 3 {
		case 0:
			g, err = emts.GenerateFFT(16, int64(i))
		case 1:
			g, err = emts.GenerateStrassen(int64(i))
		default:
			g, err = emts.GenerateRandom(emts.RandomGraphConfig{
				N: 100, Width: 0.5, Regularity: 0.2, Density: 0.5, Jump: 2,
			}, int64(i))
		}
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, emts.BatchJob{ID: i, Graph: g, Arrival: float64(i) * 240})
	}

	policies := []emts.PartitionPolicy{
		emts.WholeClusterPolicy(),
		emts.FractionPolicy(0.5),
		emts.WidthMatchedPolicy(),
	}
	fmt.Printf("%-16s %-10s %12s %14s %12s %8s\n",
		"policy", "scheduler", "wait [s]", "turnaround [s]", "makespan [s]", "util")
	for _, policy := range policies {
		for _, algo := range []string{"mcpa", "emts5"} {
			res, err := emts.SimulateBatch(jobs, emts.BatchConfig{
				Cluster:   emts.Grelon(),
				ModelName: "synthetic",
				Algorithm: algo,
				Policy:    policy,
				Backfill:  true,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-10s %12.1f %14.1f %12.1f %7.1f%%\n",
				res.Policy, res.Algorithm, res.MeanWait, res.MeanTurnaround,
				res.Makespan, 100*res.Utilization)
		}
	}
	fmt.Println("\nA better PTG scheduler (EMTS5) shortens every job, which compounds into")
	fmt.Println("lower queueing delay for everyone behind it — the paper's Section II-A story.")
}
