// Custommodel: demonstrate EMTS's model independence — the property the
// paper's title claim rests on. We plug a user-defined, empirically-shaped
// execution-time model into the scheduler: a blocked solver that only runs
// efficiently when the processor count divides its internal block grid, plus
// a communication penalty that grows with the processor count.
//
// CPA-family heuristics assume monotonically decreasing execution times;
// facing the penalties, their growth criterion stalls at tiny allocations and
// the cluster sits idle. EMTS only ever queries the model, so it can trade a
// penalty here against better packing there and find far shorter schedules.
//
// Run with: go run ./examples/custommodel
package main

import (
	"fmt"
	"log"
	"math"

	"emts"
)

func main() {
	// A blocked solver: ideal on processor counts that divide 24 evenly
	// (its internal block grid), up to 60% slower otherwise, and with a
	// log-shaped communication overhead on top.
	blocked := emts.ModelFunc("blocked-solver", func(v emts.Task, p int, c emts.Cluster) float64 {
		seq := c.SequentialTime(v.Flops)
		t := (v.Alpha + (1-v.Alpha)/float64(p)) * seq
		if p > 1 {
			if 24%p != 0 {
				t *= 1.6 // block-grid mismatch: heavy penalty
			}
			t *= 1 + 0.02*math.Log2(float64(p)) // communication overhead
		}
		return t
	})

	g, err := emts.GenerateRandom(emts.RandomGraphConfig{
		N: 60, Width: 0.5, Regularity: 0.5, Density: 0.4, Jump: 1,
	}, 21)
	if err != nil {
		log.Fatal(err)
	}
	cluster := emts.Grelon()

	fmt.Printf("PTG %s on %s with the %q model\n\n", g.Name(), cluster, "blocked-solver")

	tab, err := emts.NewTimeTable(g, blocked, cluster)
	if err != nil {
		log.Fatal(err)
	}

	// Baselines stall at small allocations: every increment looks
	// unattractive under the penalties, so most of the cluster stays idle...
	for _, al := range []emts.Allocator{emts.MCPA(), emts.HCPA()} {
		a, err := al.Allocate(g, tab)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := emts.Makespan(g, tab, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s makespan %9.2f s   (penalized allocations: %d of %d)\n",
			al.Name(), ms, countPenalized(a), g.NumTasks())
	}

	// ...EMTS explores the whole allocation space and wins decisively.
	res, err := emts.OptimizeTable(g, tab, emts.EMTS10(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s makespan %9.2f s   (penalized allocations: %d of %d)\n",
		"emts10", res.Makespan, countPenalized(res.Alloc), g.NumTasks())

	fmt.Println("\nallocation histogram of the EMTS result (divisors of 24 are penalty-free):")
	hist := map[int]int{}
	for _, s := range res.Alloc {
		hist[s]++
	}
	for p := 1; p <= 24; p++ {
		if hist[p] > 0 {
			marker := " "
			if 24%p == 0 {
				marker = "*"
			}
			fmt.Printf("  p=%2d%s: %d tasks\n", p, marker, hist[p])
		}
	}
}

// countPenalized counts allocations hitting the block-grid mismatch.
func countPenalized(a emts.Allocation) int {
	n := 0
	for _, p := range a {
		if p > 1 && 24%p != 0 {
			n++
		}
	}
	return n
}
