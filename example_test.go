package emts_test

import (
	"fmt"
	"strings"

	"emts"
)

// ExampleOptimize shows the core loop: generate a PTG, optimize its
// allocations with EMTS, and inspect the result.
func ExampleOptimize() {
	g, _ := emts.GenerateFFT(8, 42)
	res, _ := emts.Optimize(g, emts.Grelon(), emts.Synthetic(), emts.EMTS5(42))
	fmt.Println("tasks:", g.NumTasks())
	fmt.Println("beats best seed:", res.Makespan <= res.BestSeedMakespan())
	fmt.Println("generations recorded:", len(res.History)-1)
	// Output:
	// tasks: 39
	// beats best seed: true
	// generations recorded: 5
}

// ExampleNewGraph builds a PTG by hand with the builder API.
func ExampleNewGraph() {
	b := emts.NewGraph("pipeline")
	extract := b.AddTask(emts.Task{Name: "extract", Flops: 10e9, Alpha: 0.2})
	transform := b.AddTask(emts.Task{Name: "transform", Flops: 50e9, Alpha: 0.05})
	load := b.AddTask(emts.Task{Name: "load", Flops: 5e9, Alpha: 0.4})
	b.AddEdge(extract, transform)
	b.AddEdge(transform, load)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NumTasks(), "tasks,", g.NumEdges(), "edges, depth", g.Depth())
	// Output: 3 tasks, 2 edges, depth 3
}

// ExampleCompare runs several algorithms on one instance and prints the
// winner class.
func ExampleCompare() {
	g, _ := emts.GenerateStrassen(7)
	reports, _ := emts.Compare(g, emts.Grelon(), "synthetic",
		[]string{"one", "mcpa", "emts5"}, 7)
	// Reports are sorted by makespan; EMTS seeds from MCPA so it cannot lose.
	fmt.Println("winner:", reports[0].Algorithm)
	fmt.Println("one-proc baseline last:", reports[len(reports)-1].Algorithm == "one")
	// Output:
	// winner: emts5
	// one-proc baseline last: true
}

// ExampleMapSchedule separates the two steps: allocate with a heuristic,
// then map, then validate and render.
func ExampleMapSchedule() {
	g, _ := emts.GenerateFFT(4, 3)
	tab, _ := emts.NewTimeTable(g, emts.Amdahl(), emts.Chti())
	alloc, _ := emts.MCPA().Allocate(g, tab)
	sched, _ := emts.MapSchedule(g, tab, alloc)
	fmt.Println("valid:", sched.Validate(g, tab) == nil)
	fmt.Println("gantt header:", strings.Split(sched.ASCII(40), ":")[0])
	// Output:
	// valid: true
	// gantt header: schedule "fft-4"
}

// ExampleModelFunc plugs a custom non-monotonic execution-time model into
// the scheduler — EMTS never looks inside it.
func ExampleModelFunc() {
	weird := emts.ModelFunc("spiky", func(v emts.Task, p int, c emts.Cluster) float64 {
		t := (v.Alpha + (1-v.Alpha)/float64(p)) * c.SequentialTime(v.Flops)
		if p%5 == 0 {
			t *= 3 // multiples of 5 are terrible
		}
		return t
	})
	g, _ := emts.GenerateStrassen(9)
	res, _ := emts.Optimize(g, emts.Chti(), weird, emts.EMTS10(9))
	bad := 0
	for _, s := range res.Alloc {
		if s%5 == 0 {
			bad++
		}
	}
	fmt.Println("tasks on penalized counts:", bad)
	// Output: tasks on penalized counts: 0
}
